//! The run engine: a unified simulation API with parallel execution and
//! structured artifacts.
//!
//! Every experiment is a matrix of independent simulations. This module
//! gives that shape a first-class API:
//!
//! * [`RunRequest`] — one simulation: a [`SystemConfig`], a
//!   [`WorkloadSpec`], a warm-up boundary, and an optional seed override.
//! * [`RunArtifact`] — the structured result: the full [`RunStats`], a
//!   configuration echo, wall-clock timing, and (optionally) the §VI
//!   trace. Serializes to JSON via [`RunArtifact::to_json`].
//! * [`RunPlan`] — a batch of requests, now a thin façade over the
//!   [`crate::service`] job engine: the matrix is submitted to a fresh
//!   worker fleet and collected in request order. Results are
//!   **bit-identical at any thread/shard count**: each run owns its
//!   machine and derives its seed from the request alone, never from
//!   scheduling.
//!
//! [`RunPlan::run`] is the one execution entry point; it returns a
//! [`RunOutcome`] per request (completed, timed out with partial stats,
//! cancelled, or skipped after exhausting its retry budget). Execution
//! knobs (threads, timeout, retries, seed stream, checkpoint cadence)
//! live in one [`PlanOptions`] struct shared with the service.
//!
//! [`parallel_map`] is the underlying order-preserving pool, exposed for
//! experiments (like Table II) whose unit of work is not a full machine
//! run.
//!
//! # Example
//!
//! ```
//! use agile_core::runner::{RunOutcome, RunPlan, RunRequest};
//! use agile_core::service::PlanOptions;
//! use agile_core::{SystemConfig, Technique};
//! use agile_workloads::{profile, Profile};
//!
//! let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(2));
//! for technique in [Technique::Nested, Technique::Shadow] {
//!     plan.push(RunRequest::new(
//!         SystemConfig::new(technique),
//!         profile(Profile::Mcf, 2_000),
//!     ));
//! }
//! let artifacts: Vec<_> = plan.run().into_iter().map(RunOutcome::into_artifact).collect();
//! assert_eq!(artifacts.len(), 2);
//! assert!(artifacts[0].stats.tlb.misses > 0);
//! ```

pub mod json;

pub use json::{to_csv, Json};

use crate::chaos::{DegradationEvent, FaultPlan};
use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::service::{CancelToken, PlanOptions, Service, StopCause};
use crate::snapshot::{Checkpoint, CheckpointSlot};
use crate::stats::{KindCounts, RunStats};
use agile_trace::TraceLog;
use agile_types::SplitMix64;
use agile_vmm::VmtrapKind;
use agile_walk::WalkKind;
use agile_workloads::WorkloadSpec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag embedded in every serialized artifact.
pub const ARTIFACT_SCHEMA: &str = "agile-paging/run/v1";

/// One simulation to execute: configuration, workload, measurement
/// boundary, and provenance knobs.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Display label (defaults to `"<workload>/<config>"`).
    pub label: String,
    /// System configuration.
    pub config: SystemConfig,
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// Data accesses excluded from measurement at the start.
    pub warmup: u64,
    /// Seed override; `None` uses the spec's own seed.
    pub seed: Option<u64>,
    /// Record the §VI trace (guest page-table writes + TLB misses).
    pub capture_trace: bool,
    /// Fault-injection plan; arming it forces paranoia on for the run.
    pub chaos: Option<FaultPlan>,
}

impl RunRequest {
    /// A request with no warm-up, no seed override, and a label derived
    /// from the workload and configuration.
    #[must_use]
    pub fn new(config: SystemConfig, spec: WorkloadSpec) -> Self {
        RunRequest {
            label: format!("{}/{}", spec.name, config.label()),
            config,
            spec,
            warmup: 0,
            seed: None,
            capture_trace: false,
            chaos: None,
        }
    }

    /// Sets the display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Excludes the first `accesses` data accesses from measurement.
    #[must_use]
    pub fn with_warmup(mut self, accesses: u64) -> Self {
        self.warmup = accesses;
        self
    }

    /// Overrides the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Enables §VI trace capture for this run.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.capture_trace = true;
        self
    }

    /// Arms deterministic fault injection for this run (implies paranoia).
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Executes this request on a fresh machine, running to completion.
    ///
    /// # Panics
    ///
    /// With [`SystemConfig::paranoia`] on (or chaos armed, which implies
    /// it), panics if the verify layer's oracles caught any violation that
    /// the degradation paths did not heal, listing them.
    #[must_use]
    pub fn run(&self) -> RunArtifact {
        self.run_cancellable(&CancelToken::new()).0
    }

    /// [`RunRequest::run`] with a cooperative stop flag: the machine polls
    /// `token` at every workload tick boundary and stops there when it is
    /// cancelled or past its deadline, returning the artifact built from
    /// the statistics so far plus the cause that stopped it (`None` when
    /// the run completed).
    ///
    /// # Panics
    ///
    /// As [`RunRequest::run`] (unhealed paranoia violations).
    #[must_use]
    pub fn run_cancellable(&self, token: &CancelToken) -> (RunArtifact, Option<StopCause>) {
        self.run_with_recovery(token, &RecoveryControls::default())
    }

    /// [`RunRequest::run_cancellable`] with crash-recovery wiring: the
    /// machine checkpoints into `recovery.slot` every
    /// `recovery.checkpoint_interval` ticks, optionally arms the request's
    /// [`FaultPlan::kill_worker_midrun`] trigger, and — when
    /// `recovery.resume` is set — restores that checkpoint and replays
    /// only the workload events past its cursor. A resumed run's artifact
    /// is byte-identical to an uninterrupted run of the same request.
    ///
    /// The everything-off default ([`RecoveryControls::default`]) is
    /// exactly [`RunRequest::run_cancellable`]; the service's worker-death
    /// path is the intended caller of the rest.
    ///
    /// # Panics
    ///
    /// As [`RunRequest::run`] (unhealed paranoia violations), or when
    /// `recovery.resume` carries a checkpoint from a different request
    /// (mismatched configuration or VM identity).
    #[must_use]
    pub fn run_with_recovery(
        &self,
        token: &CancelToken,
        recovery: &RecoveryControls,
    ) -> (RunArtifact, Option<StopCause>) {
        let mut spec = self.spec.clone();
        if let Some(seed) = self.seed {
            spec.seed = seed;
        }
        let started = Instant::now();
        let mut machine = Machine::new(self.config);
        machine.set_cancel_token(token.clone());
        if self.capture_trace {
            machine.enable_tracing();
        }
        if let Some(plan) = &self.chaos {
            machine.enable_chaos(plan.clone());
        }
        if let Some(every) = recovery.checkpoint_interval {
            machine.set_checkpoint_sink(every, recovery.slot.clone());
        }
        if recovery.arm_kill {
            if let Some(tick) = self.chaos.as_ref().and_then(|p| p.kill_worker_midrun) {
                machine.set_kill_at_tick(tick);
            }
        }
        let (skip_events, warmup_armed) = match &recovery.resume {
            Some(cp) => {
                machine
                    .restore_from(&cp.snapshot)
                    .expect("checkpoint restores onto a machine built from its own request");
                (cp.events_consumed, cp.warmup_armed)
            }
            None => (0, self.warmup > 0),
        };
        let stats = machine.run_spec_from(&spec, self.warmup, skip_events, warmup_armed);
        if self.config.paranoia || self.chaos.is_some() {
            let violations = machine.take_violations();
            assert!(
                violations.is_empty(),
                "paranoia: run {:?} violated {} oracle check(s):\n{}",
                self.label,
                violations.len(),
                violations
                    .iter()
                    .map(|v| format!("  {v}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        let wall_nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let artifact = RunArtifact {
            label: self.label.clone(),
            config: self.config,
            workload: spec.name.clone(),
            seed: spec.seed,
            warmup: self.warmup,
            wall_nanos,
            stats,
            degradation: machine.take_degradation_events(),
            trace: self.capture_trace.then(|| machine.take_trace()),
        };
        (artifact, machine.stop_cause())
    }
}

/// Checkpoint/crash-recovery wiring for one run attempt, threaded through
/// [`RunRequest::run_with_recovery`] by the service's worker-death path.
/// The default — no checkpointing, kill trigger disarmed, no resume — is
/// exactly an ordinary run, so direct [`RunRequest::run`] calls stay
/// byte-identical.
#[derive(Debug, Clone, Default)]
pub struct RecoveryControls {
    /// Store a checkpoint into `slot` every this-many workload ticks
    /// (`None` = no checkpointing).
    pub checkpoint_interval: Option<u64>,
    /// Shared mailbox the machine checkpoints into; the service keeps a
    /// clone so it can take the latest checkpoint after a worker death.
    pub slot: CheckpointSlot,
    /// Arm the request's [`FaultPlan::kill_worker_midrun`] trigger. The
    /// service arms it only on a job's first life, so the resumed attempt
    /// is not killed again.
    pub arm_kill: bool,
    /// Resume from this checkpoint instead of starting from scratch: the
    /// machine restores the snapshot and skips the already-consumed
    /// workload events.
    pub resume: Option<Checkpoint>,
}

/// The structured result of one run: statistics, configuration echo,
/// timing, and optional trace.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Request label.
    pub label: String,
    /// Configuration echo.
    pub config: SystemConfig,
    /// Workload name.
    pub workload: String,
    /// Seed the run actually used.
    pub seed: u64,
    /// Warm-up accesses excluded from the statistics.
    pub warmup: u64,
    /// Host wall-clock time of the simulation in nanoseconds. Timing is
    /// provenance, not measurement — it is excluded from
    /// [`RunArtifact::fingerprint`].
    pub wall_nanos: u64,
    /// Everything the simulated run measured.
    pub stats: RunStats,
    /// Degradation events from the chaos layer (empty without chaos);
    /// recovery-wrapped runs append their runner-level events here too.
    pub degradation: Vec<DegradationEvent>,
    /// The §VI trace, when requested.
    pub trace: Option<TraceLog>,
}

impl RunArtifact {
    /// Full JSON form: deterministic payload plus timing provenance.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = match self.deterministic_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("deterministic_json returns an object"),
        };
        obj.push((
            "timing".into(),
            Json::obj(vec![("wall_nanos", Json::UInt(self.wall_nanos))]),
        ));
        Json::Obj(obj)
    }

    /// The deterministic portion of the artifact (no wall-clock timing, no
    /// trace payload): identical across thread counts and across hosts.
    #[must_use]
    pub fn deterministic_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(ARTIFACT_SCHEMA.into())),
            ("label", Json::Str(self.label.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("seed", Json::UInt(self.seed)),
            ("warmup", Json::UInt(self.warmup)),
            ("config", config_json(&self.config)),
            ("stats", stats_json(&self.stats)),
            (
                "degradation",
                Json::Arr(
                    self.degradation
                        .iter()
                        .map(|e| Json::Str(e.to_string()))
                        .collect(),
                ),
            ),
            (
                "trace_events",
                match &self.trace {
                    Some(t) => Json::UInt(t.len() as u64),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Canonical string of the deterministic payload, for byte-equality
    /// assertions across thread counts.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.deterministic_json().render()
    }
}

/// JSON echo of a [`SystemConfig`].
#[must_use]
pub fn config_json(cfg: &SystemConfig) -> Json {
    Json::obj(vec![
        ("label", Json::Str(cfg.label())),
        ("technique", Json::Str(cfg.technique.label().into())),
        ("thp", Json::Bool(cfg.thp)),
        ("pwc", Json::Bool(cfg.pwc.enabled)),
        ("walk_ref_cycles", Json::UInt(cfg.walk_ref_cycles)),
        ("host_ref_cycles", Json::UInt(cfg.host_ref_cycles)),
        (
            "base_cycles_per_access",
            Json::UInt(cfg.base_cycles_per_access),
        ),
        ("paranoia", Json::Bool(cfg.paranoia)),
    ])
}

/// JSON form of a full [`RunStats`], including the derived Figure 5
/// overhead split.
#[must_use]
pub fn stats_json(stats: &RunStats) -> Json {
    let o = stats.overheads();
    let kinds = KindCounts::TABLE6_ORDER
        .iter()
        .chain([&WalkKind::Native])
        .map(|kind| {
            (
                kind.table6_label().to_string(),
                Json::obj(vec![
                    ("walks", Json::UInt(stats.kinds.count(*kind))),
                    ("refs", Json::UInt(stats.kinds.refs(*kind))),
                ]),
            )
        })
        .collect();
    let traps = VmtrapKind::ALL
        .into_iter()
        .filter(|k| stats.traps.count(*k) > 0)
        .map(|k| {
            (
                k.label().to_string(),
                Json::obj(vec![
                    ("count", Json::UInt(stats.traps.count(k))),
                    ("cycles", Json::UInt(stats.traps.cycles(k))),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("accesses", Json::UInt(stats.accesses)),
        ("ideal_cycles", Json::UInt(stats.ideal_cycles)),
        ("walk_cycles", Json::UInt(stats.walk_cycles)),
        ("ad_walks", Json::UInt(stats.ad_walks)),
        (
            "tlb",
            Json::obj(vec![
                ("lookups", Json::UInt(stats.tlb.lookups)),
                ("l1_hits", Json::UInt(stats.tlb.l1_hits)),
                ("l2_hits", Json::UInt(stats.tlb.l2_hits)),
                ("misses", Json::UInt(stats.tlb.misses)),
                ("fills", Json::UInt(stats.tlb.fills)),
                ("invalidations", Json::UInt(stats.tlb.invalidations)),
            ]),
        ),
        (
            "walks",
            Json::obj(vec![
                ("attempts", Json::UInt(stats.walks.attempts)),
                ("completed", Json::UInt(stats.walks.walks)),
                ("faulted", Json::UInt(stats.walks.faulted_walks)),
                ("memory_refs", Json::UInt(stats.walks.memory_refs)),
                ("refs_shadow", Json::UInt(stats.walks.refs_shadow)),
                ("refs_guest", Json::UInt(stats.walks.refs_guest)),
                ("refs_host", Json::UInt(stats.walks.refs_host)),
            ]),
        ),
        ("kinds", Json::Obj(kinds)),
        ("traps", Json::Obj(traps)),
        (
            "os",
            Json::obj(vec![
                ("minor_faults", Json::UInt(stats.os.minor_faults)),
                ("cow_breaks", Json::UInt(stats.os.cow_breaks)),
                ("pages_mapped", Json::UInt(stats.os.pages_mapped)),
                ("huge_mappings", Json::UInt(stats.os.huge_mappings)),
                ("pages_unmapped", Json::UInt(stats.os.pages_unmapped)),
                ("clock_scans", Json::UInt(stats.os.clock_scans)),
                ("pages_reclaimed", Json::UInt(stats.os.pages_reclaimed)),
                ("cow_marked", Json::UInt(stats.os.cow_marked)),
            ]),
        ),
        (
            "vmm",
            Json::obj(vec![
                ("to_nested", Json::UInt(stats.vmm.to_nested)),
                ("to_shadow", Json::UInt(stats.vmm.to_shadow)),
                ("unsyncs", Json::UInt(stats.vmm.unsyncs)),
                ("resyncs", Json::UInt(stats.vmm.resyncs)),
                (
                    "shadow_leaves_built",
                    Json::UInt(stats.vmm.shadow_leaves_built),
                ),
                ("ctx_cache_hits", Json::UInt(stats.vmm.ctx_cache_hits)),
                ("gpt_writes_total", Json::UInt(stats.vmm.gpt_writes_total)),
                ("gpt_writes_direct", Json::UInt(stats.vmm.gpt_writes_direct)),
                ("storm_fallbacks", Json::UInt(stats.vmm.storm_fallbacks)),
            ]),
        ),
        (
            "derived",
            Json::obj(vec![
                ("page_walk_overhead", Json::Num(o.page_walk)),
                ("vmm_overhead", Json::Num(o.vmm)),
                ("total_overhead", Json::Num(o.total())),
                ("mpka", Json::Num(stats.mpka())),
                ("avg_refs_per_miss", Json::Num(stats.avg_refs_per_miss())),
            ]),
        ),
    ])
}

/// A batch of [`RunRequest`]s — a thin façade over the [`crate::service`]
/// job engine.
///
/// [`RunPlan::run`] submits the matrix to a fresh worker fleet and
/// collects one [`RunOutcome`] per request, in request order,
/// bit-identical at any [`PlanOptions::threads`] value: workers race only
/// over *which* request they pick up next, and every request is
/// self-contained.
#[derive(Debug, Clone, Default)]
pub struct RunPlan {
    requests: Vec<RunRequest>,
    opts: PlanOptions,
}

impl RunPlan {
    /// An empty serial plan (one worker, no timeout, no retries).
    #[must_use]
    pub fn new() -> Self {
        RunPlan {
            requests: Vec::new(),
            opts: PlanOptions {
                threads: 1,
                ..PlanOptions::default()
            },
        }
    }

    /// Replaces the execution options wholesale — the one knob surface
    /// shared with [`Service`].
    #[must_use]
    pub fn with_options(mut self, opts: PlanOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The execution options.
    #[must_use]
    pub fn options(&self) -> &PlanOptions {
        &self.opts
    }

    /// Mutable access to the execution options.
    pub fn options_mut(&mut self) -> &mut PlanOptions {
        &mut self.opts
    }

    /// Appends a request.
    pub fn push(&mut self, request: RunRequest) -> &mut Self {
        self.requests.push(request);
        self
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when no requests are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Executes every request and returns one [`RunOutcome`] per request,
    /// in request order — **the** execution entry point.
    ///
    /// Fault containment is built in: a panicking request is retried up to
    /// [`PlanOptions::retries`] times and then skipped; a request past
    /// [`PlanOptions::timeout`] is cancelled cooperatively at the
    /// machine's next tick boundary and surfaces as
    /// [`RunOutcome::TimedOut`] with its partial statistics — no thread is
    /// ever detached. One poisoned run never loses the rest of the matrix,
    /// and sibling results are bit-identical to an undisturbed plan's.
    #[must_use]
    pub fn run(&self) -> Vec<RunOutcome> {
        let requests = self.seeded_requests();
        if requests.is_empty() {
            return Vec::new();
        }
        let service = Service::new(PlanOptions {
            threads: self.opts.threads.min(requests.len()).max(1),
            timeout: self.opts.timeout,
            retries: self.opts.retries,
            // Seeds were already fixed request-by-request above.
            seed_base: None,
            checkpoint_interval: self.opts.checkpoint_interval,
        });
        let ids = service.submit_all(requests);
        let outcomes = ids.into_iter().map(|id| service.wait(id)).collect();
        service.shutdown();
        outcomes
    }

    fn seeded_requests(&self) -> Vec<RunRequest> {
        self.requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let mut req = req.clone();
                if req.seed.is_none() {
                    if let Some(base) = self.opts.seed_base {
                        req.seed = Some(SplitMix64::derive(base, i as u64));
                    }
                }
                req
            })
            .collect()
    }
}

/// The terminal result of one request under [`RunPlan::run`] (or one
/// service job).
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run finished (possibly after retries; runner-level events are
    /// appended to the artifact's degradation log). Boxed: an artifact is
    /// two orders of magnitude larger than the skip record.
    Completed(Box<RunArtifact>),
    /// The run passed its cooperative deadline and stopped at the
    /// machine's next tick boundary. `partial` carries the statistics up
    /// to the stop point; its degradation log ends with a
    /// [`crate::chaos::DegradationKind::Timeout`] event.
    TimedOut {
        /// Label of the timed-out request.
        label: String,
        /// Position of that request in the plan (or its job id).
        index: usize,
        /// Artifact built from the partial run.
        partial: Box<RunArtifact>,
    },
    /// The run was cancelled. `partial` is `Some` when the job was
    /// mid-flight (its degradation log then ends with a
    /// [`crate::chaos::DegradationKind::Cancelled`] event) and `None` when
    /// it was still queued.
    Cancelled {
        /// Label of the cancelled request.
        label: String,
        /// Position of that request in the plan (or its job id).
        index: usize,
        /// Artifact built from the partial run, when one had started.
        partial: Option<Box<RunArtifact>>,
    },
    /// The run panicked past its retry budget; `events` says exactly what
    /// happened and when.
    Skipped {
        /// Label of the abandoned request.
        label: String,
        /// Position of that request in the plan (or its job id).
        index: usize,
        /// The runner-level degradation events (panics, retries).
        events: Vec<DegradationEvent>,
    },
}

impl RunOutcome {
    /// The artifact, when the run completed.
    #[must_use]
    pub fn artifact(&self) -> Option<&RunArtifact> {
        match self {
            RunOutcome::Completed(a) => Some(a),
            _ => None,
        }
    }

    /// The artifact of a partial (timed-out or cancelled-mid-flight) run.
    #[must_use]
    pub fn partial_artifact(&self) -> Option<&RunArtifact> {
        match self {
            RunOutcome::TimedOut { partial, .. } => Some(partial),
            RunOutcome::Cancelled {
                partial: Some(p), ..
            } => Some(p),
            _ => None,
        }
    }

    /// Unwraps a completed run's artifact.
    ///
    /// # Panics
    ///
    /// Panics — naming the request — if the run did not complete.
    #[must_use]
    pub fn into_artifact(self) -> RunArtifact {
        match self {
            RunOutcome::Completed(a) => *a,
            RunOutcome::TimedOut { label, index, .. } => {
                panic!("run {label:?} (request #{index}) timed out")
            }
            RunOutcome::Cancelled { label, index, .. } => {
                panic!("run {label:?} (request #{index}) was cancelled")
            }
            RunOutcome::Skipped {
                label,
                index,
                events,
            } => panic!(
                "run {label:?} (request #{index}) was skipped: {}",
                events
                    .first()
                    .map_or_else(|| "no events".into(), |e| e.detail.clone())
            ),
        }
    }

    /// The request label.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            RunOutcome::Completed(a) => &a.label,
            RunOutcome::TimedOut { label, .. }
            | RunOutcome::Cancelled { label, .. }
            | RunOutcome::Skipped { label, .. } => label,
        }
    }

    /// The request's position in its plan (its job id under the service).
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            // Completed artifacts do not carry an index; callers receive
            // outcomes in request order, so this is only asked of the
            // non-completed variants in practice.
            RunOutcome::Completed(_) => usize::MAX,
            RunOutcome::TimedOut { index, .. }
            | RunOutcome::Cancelled { index, .. }
            | RunOutcome::Skipped { index, .. } => *index,
        }
    }

    /// True when the run was skipped.
    #[must_use]
    pub fn is_skipped(&self) -> bool {
        matches!(self, RunOutcome::Skipped { .. })
    }

    /// True when the run stopped at its cooperative deadline.
    #[must_use]
    pub fn is_timed_out(&self) -> bool {
        matches!(self, RunOutcome::TimedOut { .. })
    }

    /// True when the run was cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self, RunOutcome::Cancelled { .. })
    }
}

/// A panic raised by one item of a [`try_parallel_map`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs `f` over `items` on up to `threads` workers, returning results in
/// item order. `f` receives `(index, item)`. With `threads <= 1` this is a
/// plain serial map with zero thread overhead.
///
/// # Panics
///
/// Re-raises a panic from any worker, naming the item index (see
/// [`try_parallel_map`] for the non-panicking form).
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match try_parallel_map(threads, items, f) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// [`parallel_map`], but a panicking closure is reported as a
/// [`WorkerPanic`] carrying the item index instead of tearing down the
/// caller with a poisoned-lock panic.
///
/// The closure runs under [`std::panic::catch_unwind`], so no lock is held
/// across the unwind and the surviving workers stop claiming new items as
/// soon as the first panic is observed. The first panic (by observation
/// order) wins.
///
/// # Errors
///
/// Returns [`WorkerPanic`] if `f` panicked on any item.
pub fn try_parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        let mut results = Vec::with_capacity(n);
        for (i, t) in items.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                Ok(r) => results.push(r),
                Err(payload) => {
                    return Err(WorkerPanic {
                        index: i,
                        message: panic_message(payload),
                    })
                }
            }
        }
        return Ok(results);
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("queue lock")
                    .take()
                    .expect("each item is claimed once");
                // The closure runs outside any lock: a panic unwinds into
                // catch_unwind without poisoning the slot or result mutexes.
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(result) => {
                        *results[i].lock().expect("result lock") = Some(result);
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first = first_panic.lock().expect("panic lock");
                        if first.is_none() {
                            *first = Some(WorkerPanic {
                                index: i,
                                message: panic_message(payload),
                            });
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(panic) = first_panic.into_inner().expect("panic lock") {
        return Err(panic);
    }
    Ok(results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("every slot is filled")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_vmm::Technique;
    use agile_workloads::{ChurnSpec, Pattern};

    fn spec(accesses: u64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "runner-unit".into(),
            footprint: 8 << 20,
            pattern: Pattern::Uniform,
            write_fraction: 0.3,
            accesses,
            accesses_per_tick: (accesses / 4).max(1),
            churn: ChurnSpec::none(),
            prefault: false,
            prefault_writes: true,
            seed,
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let doubled = parallel_map(4, (0..100).collect::<Vec<u64>>(), |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn plan_results_are_thread_count_invariant() {
        let build = |threads| {
            let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
            for (i, technique) in [Technique::Nested, Technique::Shadow, Technique::Native]
                .into_iter()
                .enumerate()
            {
                plan.push(
                    RunRequest::new(SystemConfig::new(technique), spec(1_500, i as u64 + 1))
                        .with_warmup(300),
                );
            }
            plan.run()
                .into_iter()
                .map(RunOutcome::into_artifact)
                .collect::<Vec<_>>()
        };
        let serial = build(1);
        let parallel = build(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn try_parallel_map_reports_the_panicking_item() {
        // Pre-fix, the panic poisoned the shared result mutex and the
        // caller died on an unrelated "result lock" expect, losing the
        // offending item's identity.
        let err = try_parallel_map(4, (0..32u64).collect::<Vec<u64>>(), |i, x| {
            if x == 13 {
                panic!("boom on {x}");
            }
            i as u64 + x
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert_eq!(err.message, "boom on 13");
        assert!(err.to_string().contains("item 13"), "{err}");
    }

    #[test]
    fn try_parallel_map_serial_path_catches_panics_too() {
        let err = try_parallel_map(1, vec![1u32, 2, 3], |_, x| {
            assert_ne!(x, 2, "serial boom");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.message.contains("serial boom"), "{}", err.message);
    }

    #[test]
    fn try_parallel_map_succeeds_without_panics() {
        let ok = try_parallel_map(3, vec![10u64, 20, 30], |i, x| x + i as u64).unwrap();
        assert_eq!(ok, vec![10, 21, 32]);
    }

    #[test]
    fn plan_surfaces_the_label_of_a_panicking_run() {
        let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(2));
        plan.push(RunRequest::new(
            SystemConfig::new(Technique::Native),
            spec(200, 1),
        ));
        // A zero footprint makes every generated access land outside the
        // workload's VMAs, so the machine panics mid-run.
        let mut bad = spec(200, 2);
        bad.footprint = 0;
        plan.push(RunRequest::new(SystemConfig::new(Technique::Native), bad).with_label("bad-run"));
        let outcomes = plan.run();
        assert!(outcomes[0].artifact().is_some(), "good run completes");
        match &outcomes[1] {
            RunOutcome::Skipped {
                label,
                index,
                events,
            } => {
                assert_eq!(*index, 1);
                assert_eq!(label, "bad-run");
                let detail = &events.first().expect("panic event recorded").detail;
                assert!(detail.contains("workload accesses"), "{detail}");
            }
            other => panic!("expected the bad run to be skipped, got {other:?}"),
        }
    }

    #[test]
    fn seed_stream_is_deterministic_and_respects_overrides() {
        let mut plan = RunPlan::new().with_options(PlanOptions {
            threads: 1,
            seed_base: Some(7),
            ..PlanOptions::default()
        });
        plan.push(RunRequest::new(
            SystemConfig::new(Technique::Native),
            spec(500, 1),
        ));
        plan.push(
            RunRequest::new(SystemConfig::new(Technique::Native), spec(500, 1)).with_seed(42),
        );
        let artifacts: Vec<RunArtifact> = plan
            .run()
            .into_iter()
            .map(RunOutcome::into_artifact)
            .collect();
        assert_eq!(artifacts[0].seed, SplitMix64::derive(7, 0));
        assert_eq!(artifacts[1].seed, 42);
    }

    #[test]
    fn artifact_json_round_trips() {
        let artifact = RunRequest::new(
            SystemConfig::new(Technique::Agile(agile_vmm::AgileOptions::default())),
            spec(1_000, 3),
        )
        .with_trace()
        .run();
        let rendered = artifact.to_json().render();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(parsed, artifact.to_json());
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("accesses"))
                .and_then(Json::as_u64),
            Some(artifact.stats.accesses)
        );
        assert!(parsed.get("trace_events").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn fingerprint_excludes_timing() {
        let req = RunRequest::new(SystemConfig::new(Technique::Shadow), spec(800, 9));
        let a = req.run();
        let b = req.run();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
