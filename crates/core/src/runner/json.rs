//! A minimal JSON value type with a renderer, a parser, and a CSV
//! flattener.
//!
//! The workspace is dependency-free by design (the build must succeed with
//! no network access), so structured artifacts are emitted through this
//! ~300-line JSON implementation instead of serde. It supports exactly
//! what run artifacts need: ordered objects, arrays, strings, booleans,
//! unsigned integers, and floats. Floats render via `{:?}` (Rust's
//! shortest round-trip representation), so `parse(render(v)) == v` holds
//! for every value the simulator produces.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendered artifacts
/// are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, cycles, seeds).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by two spaces.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, padc) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no Infinity/NaN; encode as null like
                    // serde_json does.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        // The byte offset of the backslash, for error
                        // positions.
                        let esc = *pos - 1;
                        let unit = parse_hex4(bytes, *pos + 1)?;
                        *pos += 5;
                        let c = match unit {
                            // High surrogate: must combine with a trailing
                            // \uXXXX low surrogate into one supplementary
                            // scalar (UTF-16 as JSON mandates).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos) != Some(&b'\\')
                                    || bytes.get(*pos + 1) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "unpaired high surrogate \\u{unit:04x} at byte {esc}"
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 2)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{unit:04x} at byte {esc} followed by \
                                         non-low-surrogate \\u{low:04x}"
                                    ));
                                }
                                *pos += 6;
                                let code = 0x1_0000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(code).expect("valid supplementary scalar")
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{unit:04x} at byte {esc}"
                                ));
                            }
                            _ => char::from_u32(u32::from(unit)).expect("BMP non-surrogate"),
                        };
                        out.push(c);
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the four hex digits of a `\uXXXX` escape starting at `start`.
fn parse_hex4(bytes: &[u8], start: usize) -> Result<u16, String> {
    let hex = bytes
        .get(start..start + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {}", start.saturating_sub(2)))?;
    let text = std::str::from_utf8(hex)
        .map_err(|_| format!("bad \\u escape at byte {}", start.saturating_sub(2)))?;
    u16::from_str_radix(text, 16).map_err(|_| {
        format!(
            "bad \\u escape {text:?} at byte {}",
            start.saturating_sub(2)
        )
    })
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Flattens an array of JSON objects into CSV: scalar fields become
/// columns (nested objects flatten with dotted keys, in first-seen order);
/// arrays are skipped. Rows missing a column leave the cell empty.
#[must_use]
pub fn to_csv(rows: &[Json]) -> String {
    let mut columns: Vec<String> = Vec::new();
    let mut flat_rows: Vec<Vec<(String, String)>> = Vec::new();
    for row in rows {
        let mut cells = Vec::new();
        flatten(row, "", &mut cells);
        for (key, _) in &cells {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
        flat_rows.push(cells);
    }
    let mut out = String::new();
    out.push_str(
        &columns
            .iter()
            .map(|c| csv_cell(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for cells in &flat_rows {
        let line: Vec<String> = columns
            .iter()
            .map(|col| {
                cells
                    .iter()
                    .find(|(k, _)| k == col)
                    .map(|(_, v)| csv_cell(v))
                    .unwrap_or_default()
            })
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

fn flatten(value: &Json, prefix: &str, out: &mut Vec<(String, String)>) {
    match value {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &key, out);
            }
        }
        Json::Arr(_) => {}
        Json::Null => out.push((prefix.to_string(), String::new())),
        Json::Bool(b) => out.push((prefix.to_string(), b.to_string())),
        Json::UInt(n) => out.push((prefix.to_string(), n.to_string())),
        Json::Num(x) => out.push((prefix.to_string(), format!("{x:?}"))),
        Json::Str(s) => out.push((prefix.to_string(), s.clone())),
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj(vec![
            ("name", Json::Str("mcf \"quoted\"\n".into())),
            ("count", Json::UInt(u64::MAX)),
            ("ratio", Json::Num(0.1 + 0.2)),
            ("neg", Json::Num(-3.5)),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
            (
                "nested",
                Json::obj(vec![
                    ("a", Json::UInt(1)),
                    ("b", Json::Arr(vec![Json::UInt(2)])),
                ]),
            ),
        ])
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = sample();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn u64_survives_exactly() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(Json::parse(&v.render()).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_renders_shortest_round_trip() {
        let v = Json::Num(0.30000000000000004);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_decode_bmp_and_surrogate_pairs() {
        // BMP escape.
        assert_eq!(
            Json::parse("\"caf\\u00e9\"").unwrap(),
            Json::Str("café".into())
        );
        // Surrogate pair combining into one supplementary scalar (U+1F600).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // Pair embedded in surrounding text.
        assert_eq!(
            Json::parse("\"a\\ud83d\\ude00b\"").unwrap(),
            Json::Str("a😀b".into())
        );
    }

    #[test]
    fn unicode_escapes_reject_malformed_surrogates_with_position() {
        // Lone high surrogate at end of string.
        let err = Json::parse("\"\\ud83d\"").unwrap_err();
        assert!(err.contains("unpaired high surrogate"), "{err}");
        assert!(err.contains("byte 1"), "{err}");
        // High surrogate followed by a non-surrogate escape.
        let err = Json::parse("\"\\ud83d\\u0041\"").unwrap_err();
        assert!(err.contains("non-low-surrogate"), "{err}");
        // High surrogate followed by plain text.
        assert!(Json::parse("\"\\ud83dxx\"").is_err());
        // Lone low surrogate.
        let err = Json::parse("\"\\ude00\"").unwrap_err();
        assert!(err.contains("lone low surrogate"), "{err}");
        // Truncated and non-hex escapes.
        assert!(Json::parse("\"\\u00\"").is_err());
        assert!(Json::parse("\"\\uzzzz\"").is_err());
    }

    #[test]
    fn non_bmp_round_trips_through_parse() {
        let v = Json::Str("snowman ☃ and 😀 mix".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("nested").unwrap().get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("name").unwrap().as_str().unwrap().chars().next(),
            Some('m')
        );
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn csv_flattens_with_dotted_keys() {
        let rows = vec![
            Json::obj(vec![
                ("a", Json::UInt(1)),
                ("o", Json::obj(vec![("x", Json::Str("p,q".into()))])),
            ]),
            Json::obj(vec![("a", Json::UInt(2)), ("extra", Json::Bool(false))]),
        ];
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,o.x,extra");
        assert_eq!(lines[1], "1,\"p,q\",");
        assert_eq!(lines[2], "2,,false");
    }
}
