//! The multi-VM host: N machines on one shared physical frame pool.
//!
//! One [`Machine`] is one VM. A [`Host`] owns several and arbitrates the
//! single resource they contend for — physical frames — through a lease
//! ledger ([`agile_mem::FramePool`]): each VM keeps its own [`agile_mem::PhysMem`]
//! (frame *numbers* are disjoint by construction, see
//! [`agile_mem::VM_FRAME_SPAN`]), and the host enforces each VM's share of
//! *capacity* through the machine's frame budget. Everything the host does
//! under pressure is a typed [`DegradationEvent`], never a panic, and every
//! run is a pure function of its seeds — same seeds, byte-identical
//! [`Host::render_full_log`].
//!
//! **The frame-pressure arbiter.** Before every dispatched event the host
//! restores the VM's headroom to the configured watermark: first by
//! granting free pool frames (lease growth, [`DegradationKind::LeaseChange`]),
//! then by ballooning the *other* VMs in ascending id order with capped
//! backoff (×1, ×2, ×4 reclaim passes; [`DegradationKind::BalloonRequest`]),
//! then by demoting the starving VM's agile processes to nested mode to
//! free their shadow page tables ([`DegradationKind::TechniqueDemotion`] —
//! the same fallback the trap-storm hysteresis uses, §IV of the paper, but
//! driven by host memory pressure instead of trap rate). If all of that
//! fails the VM is starved ([`DegradationKind::VmStarved`]): table-editing
//! events are deferred and data accesses degrade to per-access OOM skips
//! inside the machine. A noisy neighbor can slow its victim down, but
//! never crash it.
//!
//! **Cross-VM shootdowns.** Host-initiated operations (balloon reclaim,
//! migration teardown, pressure demotion) emit the full shootdown protocol
//! on the affected VM, drained through separate loss dice
//! ([`crate::FaultPlan::cross_vm_drop_pm`]). A lost cross-VM shootdown
//! leaves genuinely stale TLB/PWC state; [`Machine::heal_stale_caches`]
//! must drive the oracle violations back to zero — that is the chaos
//! contract extended to host scope.
//!
//! **Live migration.** [`Host::migrate_process`] re-homes a process from
//! one VM to another: capture its [`ProcessImage`] (VMAs, mapped leaves,
//! and a translation view), replay it on the destination (demand-faulting
//! fresh frames under the destination's lease), tear down the source
//! mappings with the full shootdown protocol, balloon the freed frames
//! back to the pool, and heal whatever the cross-VM dice dropped. When
//! every leaf lands, the [`snapshot::diff`] migration differ compares the
//! source and destination views — same pages present, same writability —
//! and records any unintended change as an oracle violation on the
//! destination machine, where [`Machine::lint`] and the chaos contract
//! surface it.

use crate::analyze::{
    check_host_frames, detect_host_shootdown_races, LintReport, ShootdownLog, VmFrameView,
    VmShootdownView,
};
use crate::chaos::{render_log, DegradationEvent, DegradationKind, FaultPlan, MAX_EVENTS};
use crate::config::SystemConfig;
use crate::machine::{AccessError, Machine};
use crate::snapshot::{self, DiffIntent, ProcessImage, TransitionView};
use crate::stats::RunStats;
use crate::verify::Violation;
use agile_mem::FramePool;
use agile_types::{ProcessId, VmId};
use agile_workloads::{Event, Workload, WorkloadSpec};

/// Headroom floor (frames) below which the host stops dispatching
/// table-editing events to a starved VM: context switches can spawn
/// processes and unmaps can split huge pages, and those paths allocate
/// infallibly. Data accesses keep flowing — the machine's own OOM path
/// degrades them gracefully.
const STARVATION_FLOOR: u64 = 8;

/// Steps a starved VM waits before the arbiter retries the full chain
/// (grant → balloon → demote). A failed arbitration means the pool and
/// every balloon are dry; rerunning the reclaim sweeps each event would
/// burn simulated work without producing frames, so the retry is paced.
/// Pool state can change meanwhile (teardown, another VM ballooning), and
/// the pacing is in dispatched steps, so it is deterministic.
const ARBITRATION_RETRY_STEPS: u64 = 64;

/// Host configuration: the shared pool and the arbiter's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostConfig {
    /// Total physical frames the pool holds (the overcommit target: the
    /// sum of what the VMs *want* may exceed this).
    pub pool_frames: u64,
    /// Lease requested for each VM at [`Host::add_vm`] (clamped to what is
    /// free).
    pub initial_lease: u64,
    /// Headroom (frames) the arbiter restores before dispatching an event.
    /// Must exceed the machine's own OOM watermark (16) for arbitration to
    /// engage before the machine's last-ditch internal reclaim.
    pub watermark: u64,
    /// Minimum frames per lease grant (top-ups are batched so the pool is
    /// not nickel-and-dimed one frame at a time).
    pub grant_step: u64,
    /// Whether the arbiter may demote a starving VM's agile processes to
    /// nested mode to free shadow page-table frames.
    pub demote_under_pressure: bool,
}

impl HostConfig {
    /// A host with `pool_frames` of capacity and default arbiter knobs.
    #[must_use]
    pub fn new(pool_frames: u64) -> Self {
        HostConfig {
            pool_frames,
            initial_lease: 256,
            watermark: 24,
            grant_step: 64,
            demote_under_pressure: true,
        }
    }

    /// Sets the per-VM initial lease.
    #[must_use]
    pub fn initial_lease(mut self, frames: u64) -> Self {
        self.initial_lease = frames;
        self
    }

    /// Disables agile→nested demotion under pressure.
    #[must_use]
    pub fn no_demotion(mut self) -> Self {
        self.demote_under_pressure = false;
        self
    }
}

/// What [`Host::migrate_process`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// The process id on the destination VM.
    pub new_pid: ProcessId,
    /// Mapped leaves re-touched (and therefore re-homed) on the
    /// destination.
    pub pages_moved: u64,
    /// Leaves abandoned because the destination ran out of frames even
    /// after arbitration (they demand-fault later if re-touched).
    pub pages_skipped: u64,
    /// Frames the source ballooned back to the pool after teardown.
    pub frames_surrendered: u64,
    /// Oracle violations left after healing on both machines, plus any
    /// unintended changes the migration differ caught when comparing the
    /// source and destination translation views (must be 0 for the chaos
    /// contract).
    pub residual_violations: usize,
    /// Whether the migration differ ran: true when no leaf was skipped
    /// and the destination evicted nothing during the replay, so the
    /// source and destination views were comparable.
    pub diff_checked: bool,
}

#[derive(Debug)]
struct VmSlot {
    machine: Option<Machine>,
    workload: Option<Workload>,
    spec: WorkloadSpec,
    done: bool,
    torn_down: bool,
    /// Cumulative frames this VM's balloon surrendered to the host.
    ballooned: u64,
    /// Set once headroom restoration fails, cleared when it succeeds, so
    /// a starved VM logs one `VmStarved` per starvation episode instead of
    /// one per event.
    starved: bool,
    /// Step stamp before which a starved VM's arbitration is not retried
    /// (see [`ARBITRATION_RETRY_STEPS`]).
    retry_at: u64,
    stats: Option<RunStats>,
    final_view: Option<VmFrameView>,
    /// Events and violations harvested when the machine is torn down.
    events: Vec<DegradationEvent>,
    violations: Vec<Violation>,
    /// Shootdown protocol log harvested at teardown, so the host-scope
    /// race detector still covers a VM whose machine is gone.
    shootdown_log: Option<ShootdownLog>,
}

/// A multi-VM host: machines, the shared frame pool, and the arbiter.
/// See the module docs for the architecture.
#[derive(Debug)]
pub struct Host {
    cfg: HostConfig,
    pool: FramePool,
    vms: Vec<VmSlot>,
    events: Vec<DegradationEvent>,
    next_seq: u64,
    truncated: bool,
    /// Total events dispatched across all VMs — the host's clock, used as
    /// the `access` stamp of host-level events.
    steps: u64,
    /// VM exempt from ballooning while it is the source of an in-flight
    /// migration (its pages are pinned for the copy; reclaiming them would
    /// hand the destination frames stolen from the very process being
    /// moved, and leave nothing for the source teardown to surrender).
    balloon_pin: Option<usize>,
}

impl Host {
    /// An empty host over a pool of `cfg.pool_frames` frames.
    #[must_use]
    pub fn new(cfg: HostConfig) -> Self {
        Host {
            cfg,
            pool: FramePool::new(cfg.pool_frames),
            vms: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
            truncated: false,
            steps: 0,
            balloon_pin: None,
        }
    }

    /// Adds a VM running `spec` under `sys` with fault plan `plan`, and
    /// grants it an initial lease (clamped to free pool capacity). VM ids
    /// are assigned densely in add order. Chaos is always armed — the
    /// host's pressure paths require the oracles — and the plan's OOM
    /// relief valve is disabled: on a shared pool, only the *host* may
    /// move capacity, so the machine must never lift its own budget.
    pub fn add_vm(&mut self, sys: SystemConfig, spec: WorkloadSpec, plan: FaultPlan) -> VmId {
        let vm = VmId::new(u32::try_from(self.vms.len()).expect("vm count fits u32"));
        let mut plan = plan;
        plan.max_oom_failures = u32::MAX;
        let mut machine = Machine::for_vm(sys, vm);
        machine.enable_chaos(plan);
        let granted = self.pool.grant(vm, self.cfg.initial_lease);
        machine.set_frame_budget(Some(self.pool.lease_of(vm)));
        machine.record_degradation(
            DegradationKind::LeaseChange,
            None,
            format!("initial lease of {granted} frames"),
        );
        self.record_host(
            DegradationKind::LeaseChange,
            format!(
                "vm {}: initial lease {granted} of {} requested ({} free)",
                vm.raw(),
                self.cfg.initial_lease,
                self.pool.free()
            ),
        );
        let workload = Workload::new(spec.clone());
        self.vms.push(VmSlot {
            machine: Some(machine),
            workload: Some(workload),
            spec,
            done: false,
            torn_down: false,
            ballooned: 0,
            starved: false,
            retry_at: 0,
            stats: None,
            final_view: None,
            events: Vec::new(),
            violations: Vec::new(),
            shootdown_log: None,
        });
        vm
    }

    /// Number of VMs ever added (including torn-down ones).
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The shared frame pool (read-only inspection).
    #[must_use]
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// The VM's machine, if it has not been torn down.
    #[must_use]
    pub fn machine(&self, vm: VmId) -> Option<&Machine> {
        self.vms.get(vm.raw() as usize)?.machine.as_ref()
    }

    /// Mutable access to a VM's machine, for scenario setup (spawning
    /// service processes, pre-mapping regions). Allocation stays governed
    /// by the VM's budget, so nothing done here can overdraw the pool.
    #[must_use]
    pub fn machine_mut(&mut self, vm: VmId) -> Option<&mut Machine> {
        self.vms.get_mut(vm.raw() as usize)?.machine.as_mut()
    }

    /// The finished-run statistics of `vm`, once its workload completed or
    /// it was torn down.
    #[must_use]
    pub fn stats_of(&self, vm: VmId) -> Option<&RunStats> {
        self.vms.get(vm.raw() as usize)?.stats.as_ref()
    }

    /// Total events dispatched so far across all VMs (the host's clock).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Manually grows `vm`'s lease by up to `frames` from the pool's free
    /// set (scenario setup: reserving headroom before host-driven service
    /// work, which runs outside the arbiter). Returns the frames granted.
    pub fn grant_lease(&mut self, vm: VmId, frames: u64) -> u64 {
        let granted = self.pool.grant(vm, frames);
        if granted > 0 {
            let lease = self.pool.lease_of(vm);
            if let Some(m) = self.vms[vm.raw() as usize].machine.as_mut() {
                m.set_frame_budget(Some(lease));
                m.record_degradation(
                    DegradationKind::LeaseChange,
                    None,
                    format!("lease grew by {granted} to {lease} (manual grant)"),
                );
            }
        }
        granted
    }

    fn slot_vm(i: usize) -> VmId {
        VmId::new(u32::try_from(i).expect("vm count fits u32"))
    }

    fn record_host(&mut self, kind: DegradationKind, detail: String) {
        if self.events.len() >= MAX_EVENTS {
            if !self.truncated {
                self.truncated = true;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.events.push(DegradationEvent {
                    seq,
                    access: self.steps,
                    kind: DegradationKind::LogTruncated,
                    gva: None,
                    detail: format!("host event log capped at {MAX_EVENTS} entries"),
                });
            }
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(DegradationEvent {
            seq,
            access: self.steps,
            kind,
            gva: None,
            detail,
        });
    }

    /// Runs every VM's workload to completion, round-robin in VM-id order
    /// (one event per VM per round — the lockstep schedule that makes
    /// noisy-neighbor interference deterministic).
    pub fn run(&mut self) {
        while self.run_steps(u64::MAX) {}
    }

    /// Dispatches up to `budget` events round-robin; returns `true` while
    /// any VM still has workload events left. Pausing mid-run is how
    /// scenarios interleave host operations (migration, teardown) with
    /// workload execution at a deterministic point.
    pub fn run_steps(&mut self, mut budget: u64) -> bool {
        loop {
            let mut progressed = false;
            for i in 0..self.vms.len() {
                if self.vms[i].done || self.vms[i].machine.is_none() {
                    continue;
                }
                if budget == 0 {
                    return true;
                }
                let Some(event) = self.vms[i].workload.as_mut().and_then(Iterator::next) else {
                    self.finish_vm(i);
                    continue;
                };
                progressed = true;
                budget -= 1;
                self.steps += 1;
                self.dispatch(i, event);
            }
            if !progressed {
                return false;
            }
        }
    }

    fn finish_vm(&mut self, i: usize) {
        let name = self.vms[i].spec.name.clone();
        let slot = &mut self.vms[i];
        slot.done = true;
        slot.workload = None;
        if slot.stats.is_none() {
            if let Some(m) = slot.machine.as_ref() {
                slot.stats = Some(m.stats(&name));
            }
        }
    }

    fn dispatch(&mut self, i: usize, event: Event) {
        self.ensure_headroom(i);
        let m = self.vms[i].machine.as_mut().expect("dispatch to live vm");
        let remaining = m.frames_remaining().unwrap_or(u64::MAX);
        if remaining < STARVATION_FLOOR
            && !matches!(event, Event::Access { .. } | Event::Mmap { .. })
        {
            // Deferring maintenance is the graceful degradation: the
            // event's page-table edits could allocate infallibly, and a
            // starved VM must never panic. Accesses still dispatch (the
            // machine's fallible path skips them one by one), and mmaps
            // are pure bookkeeping the workload's later accesses rely on.
            m.record_degradation(
                DegradationKind::VmStarved,
                None,
                format!(
                    "deferred {} at {remaining} frames of headroom",
                    event_name(&event)
                ),
            );
            return;
        }
        m.run_event(event);
    }

    /// Restores VM `i`'s headroom to the watermark: pool grant, then
    /// ballooning the other VMs (id order, ×1/×2/×4 backoff), then agile
    /// demotion of the starving VM itself. Records a typed event for every
    /// lever pulled and `VmStarved` (once per episode) when all fail.
    fn ensure_headroom(&mut self, i: usize) {
        if self.headroom_met(i) {
            self.vms[i].starved = false;
            return;
        }
        if self.vms[i].starved && self.steps < self.vms[i].retry_at {
            // Last arbitration came up dry; rerunning the reclaim sweeps
            // every event would thrash without producing frames. The
            // dispatch floor and the machine's per-access OOM path carry
            // the VM until the retry.
            return;
        }
        if self.grant_to(i) {
            self.vms[i].starved = false;
            return;
        }
        for passes in [1u32, 2, 4] {
            for j in 0..self.vms.len() {
                if j == i {
                    continue;
                }
                // Re-attempt the grant after every balloon so the sweep
                // stops as soon as enough frames came back.
                if self.balloon_vm(j, passes) > 0 && self.grant_to(i) {
                    self.vms[i].starved = false;
                    return;
                }
            }
            if self.grant_to(i) {
                self.vms[i].starved = false;
                return;
            }
        }
        if self.cfg.demote_under_pressure && self.demote_vm(i) && self.headroom_met(i) {
            self.vms[i].starved = false;
            return;
        }
        self.vms[i].retry_at = self.steps + ARBITRATION_RETRY_STEPS;
        if !self.vms[i].starved {
            self.vms[i].starved = true;
            let vm = Self::slot_vm(i);
            let remaining = self.vms[i]
                .machine
                .as_ref()
                .and_then(Machine::frames_remaining)
                .unwrap_or(0);
            self.record_host(
                DegradationKind::VmStarved,
                format!(
                    "vm {}: arbitration exhausted at {remaining} frames of headroom \
                     ({} free in pool)",
                    vm.raw(),
                    self.pool.free()
                ),
            );
        }
    }

    fn headroom_met(&self, i: usize) -> bool {
        self.vms[i]
            .machine
            .as_ref()
            .and_then(Machine::frames_remaining)
            .is_none_or(|r| r >= self.cfg.watermark)
    }

    /// Grants free pool frames to VM `i` up to the watermark (batched by
    /// `grant_step`). Returns whether the watermark is now met.
    fn grant_to(&mut self, i: usize) -> bool {
        let vm = Self::slot_vm(i);
        let Some(m) = self.vms[i].machine.as_ref() else {
            return true;
        };
        let Some(remaining) = m.frames_remaining() else {
            return true;
        };
        if remaining >= self.cfg.watermark {
            return true;
        }
        let deficit = self.cfg.watermark - remaining;
        let granted = self.pool.grant(vm, deficit.max(self.cfg.grant_step));
        if granted > 0 {
            let lease = self.pool.lease_of(vm);
            let m = self.vms[i].machine.as_mut().expect("checked above");
            m.set_frame_budget(Some(lease));
            m.record_degradation(
                DegradationKind::LeaseChange,
                None,
                format!("lease grew by {granted} to {lease}"),
            );
        }
        remaining + granted >= self.cfg.watermark
    }

    /// Balloon request against VM `j`: reclaim with `passes` clock passes,
    /// surrender the recycle list, shrink the lease by the same amount.
    /// The VM's own headroom is unchanged — the frames move from its lease
    /// to the pool's free set.
    fn balloon_vm(&mut self, j: usize, passes: u32) -> u64 {
        if self.balloon_pin == Some(j) {
            return 0;
        }
        let vm = Self::slot_vm(j);
        let Some(m) = self.vms[j].machine.as_mut() else {
            return 0;
        };
        let surrendered = m.host_reclaim(passes);
        if surrendered == 0 {
            return 0;
        }
        let credited = self.pool.surrender(vm, surrendered);
        self.vms[j].ballooned += surrendered;
        let lease = self.pool.lease_of(vm);
        let m = self.vms[j].machine.as_mut().expect("checked above");
        m.set_frame_budget(Some(lease));
        m.record_degradation(
            DegradationKind::BalloonRequest,
            None,
            format!("surrendered {surrendered} frames to the host pool (x{passes} reclaim)"),
        );
        self.record_host(
            DegradationKind::BalloonRequest,
            format!(
                "vm {}: ballooned {credited} frames (x{passes} reclaim)",
                vm.raw()
            ),
        );
        credited
    }

    /// Agile→nested demotion of VM `i`'s processes under host pressure.
    /// Returns whether anything was demoted.
    fn demote_vm(&mut self, i: usize) -> bool {
        let vm = Self::slot_vm(i);
        let Some(m) = self.vms[i].machine.as_mut() else {
            return false;
        };
        let demoted = m.demote_to_nested();
        if demoted == 0 {
            return false;
        }
        m.record_degradation(
            DegradationKind::TechniqueDemotion,
            None,
            format!("{demoted} process(es) demoted agile→nested under host pressure"),
        );
        // The demotion's shootdowns rode the cross-VM dice; close any
        // window they left before the VM touches memory again.
        let _ = m.heal_stale_caches();
        self.record_host(
            DegradationKind::TechniqueDemotion,
            format!(
                "vm {}: demoted {demoted} process(es) to free shadow tables",
                vm.raw()
            ),
        );
        true
    }

    /// Live VM-to-VM process migration. `pid` must be a host-managed
    /// service process on `src` (spawned via [`Machine::spawn_process`] —
    /// never one of the workload's event-indexed processes, whose later
    /// events would still target the source VM). Captures the process's
    /// [`ProcessImage`], re-homes every mapped leaf onto `dst` under its
    /// lease, tears the source mappings down with the full shootdown
    /// protocol (cross-VM loss dice), balloons the freed frames back to
    /// the pool, and heals both machines. When no leaf was skipped, the
    /// [`snapshot::diff`] migration differ then asserts the destination
    /// reproduced the source's translation view exactly (same pages, same
    /// writability — frames and sizes are *expected* to change); caught
    /// divergence is recorded on the destination machine and counted in
    /// [`MigrationOutcome::residual_violations`].
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either VM is gone.
    pub fn migrate_process(&mut self, src: VmId, pid: ProcessId, dst: VmId) -> MigrationOutcome {
        assert_ne!(src, dst, "migration needs two distinct VMs");
        let si = src.raw() as usize;
        let di = dst.raw() as usize;
        assert!(
            self.vms[si].machine.is_some() && self.vms[di].machine.is_some(),
            "both migration endpoints must be live"
        );
        let image = {
            let m = self.vms[si].machine.as_ref().expect("live src");
            ProcessImage::capture(m, pid)
        };
        // Destination: replay the address space and re-touch every leaf.
        let (new_pid, dst_prev) = {
            let m = self.vms[di].machine.as_mut().expect("live dst");
            let prev = m.current_pid();
            let new_pid = m.spawn_process();
            for vma in &image.vmas {
                m.host_mmap_vma(new_pid, vma);
            }
            m.switch_to(new_pid);
            (new_pid, prev)
        };
        let mut moved = 0u64;
        let mut skipped = 0u64;
        let dst_reclaimed_before = {
            let m = self.vms[di].machine.as_ref().expect("live dst");
            m.os().stats().pages_reclaimed
        };
        self.balloon_pin = Some(si);
        for &(va, write) in &image.leaves {
            self.ensure_headroom(di);
            let m = self.vms[di].machine.as_mut().expect("live dst");
            match m.try_touch(va, write) {
                Ok(()) => moved += 1,
                Err(AccessError::OutOfMemory) => {
                    skipped += 1;
                    m.record_degradation(
                        DegradationKind::OomSkip,
                        Some(va),
                        "migration fault skipped under frame pressure".to_string(),
                    );
                }
                Err(AccessError::Seg(_)) => {
                    unreachable!("replayed VMAs cover every migrated leaf")
                }
            }
        }
        self.balloon_pin = None;
        // Differ: on a non-degraded migration, the destination's
        // translation view of the new process must match the source's
        // image — any page lost, invented, or with flipped writability is
        // an unintended change. A degraded migration diverges by design
        // and is excluded: an OomSkip abandons leaves outright, and frame
        // pressure can make the destination's internal reclaim evict
        // just-replayed pages (visible as a pages_reclaimed delta) — both
        // already surface as degradation events.
        let dst_reclaimed = {
            let m = self.vms[di].machine.as_ref().expect("live dst");
            m.os().stats().pages_reclaimed - dst_reclaimed_before
        };
        let diff_checked = skipped == 0 && dst_reclaimed == 0;
        let diff_violations = if diff_checked {
            let m = self.vms[di].machine.as_ref().expect("live dst");
            let dst_view = TransitionView::capture_process(m, new_pid);
            snapshot::diff(image.view(), &dst_view, DiffIntent::Migration)
        } else {
            Vec::new()
        };
        self.vms[di]
            .machine
            .as_mut()
            .expect("live dst")
            .switch_to(dst_prev);
        // Source: tear down, surrender the freed frames, heal.
        let surrendered = {
            let m = self.vms[si].machine.as_mut().expect("live src");
            for vma in &image.vmas {
                m.host_munmap(pid, vma.start, vma.len);
            }
            m.host_reclaim(0)
        };
        let credited = self.pool.surrender(src, surrendered);
        self.vms[si].ballooned += surrendered;
        let lease = self.pool.lease_of(src);
        let residual = {
            let m = self.vms[si].machine.as_mut().expect("live src");
            m.set_frame_budget(Some(lease));
            m.record_degradation(
                DegradationKind::ProcessMigration,
                None,
                format!(
                    "pid {} migrated out: {} leaves snapshotted, {surrendered} frames \
                     surrendered",
                    pid.raw(),
                    image.leaves.len()
                ),
            );
            let mut residual = m.heal_stale_caches().len();
            let m = self.vms[di].machine.as_mut().expect("live dst");
            m.record_degradation(
                DegradationKind::ProcessMigration,
                None,
                format!(
                    "pid {} migrated in as pid {}: {moved} leaves re-homed, {skipped} skipped",
                    pid.raw(),
                    new_pid.raw()
                ),
            );
            residual += m.heal_stale_caches().len();
            residual += diff_violations.len();
            m.record_violations(diff_violations);
            residual
        };
        self.record_host(
            DegradationKind::ProcessMigration,
            format!(
                "vm {} → vm {}: pid {} re-homed as pid {} ({moved} moved, {skipped} \
                 skipped, {credited} frames returned)",
                src.raw(),
                dst.raw(),
                pid.raw(),
                new_pid.raw()
            ),
        );
        MigrationOutcome {
            new_pid,
            pages_moved: moved,
            pages_skipped: skipped,
            frames_surrendered: surrendered,
            residual_violations: residual,
            diff_checked,
        }
    }

    /// Tears a VM down: harvests its stats, events, and violations, drops
    /// the machine (every frame it held dies with its `PhysMem`), and
    /// returns the entire lease to the pool. The freed capacity is
    /// immediately grantable to the surviving VMs.
    pub fn teardown_vm(&mut self, vm: VmId) {
        let i = vm.raw() as usize;
        let name = self.vms[i].spec.name.clone();
        let slot = &mut self.vms[i];
        let Some(mut machine) = slot.machine.take() else {
            return;
        };
        slot.done = true;
        slot.torn_down = true;
        slot.workload = None;
        if slot.stats.is_none() {
            slot.stats = Some(machine.stats(&name));
        }
        slot.events.extend(machine.take_degradation_events());
        slot.violations.extend(machine.take_violations());
        slot.shootdown_log = machine.shootdown_log().cloned();
        let frame_base = machine.mem().frame_base();
        let frames_allocated = machine.mem().frames_allocated();
        drop(machine);
        let released = self.pool.forfeit(vm);
        slot.final_view = Some(VmFrameView {
            vm,
            frame_base,
            frames_allocated,
            frames_charged: 0,
            lease: self.pool.lease_of(vm),
            ballooned: slot.ballooned,
            pool_surrendered: self.pool.surrendered_by(vm),
            torn_down: true,
        });
        self.record_host(
            DegradationKind::LeaseChange,
            format!(
                "vm {}: torn down, {released} leased frames returned",
                vm.raw()
            ),
        );
    }

    /// One frame-accounting view per VM, for the host-scope lint.
    #[must_use]
    pub fn frame_views(&self) -> Vec<VmFrameView> {
        self.vms
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let vm = Self::slot_vm(i);
                match (&slot.machine, slot.final_view) {
                    (Some(m), _) => VmFrameView {
                        vm,
                        frame_base: m.mem().frame_base(),
                        frames_allocated: m.mem().frames_allocated(),
                        frames_charged: m.frames_charged(),
                        lease: self.pool.lease_of(vm),
                        ballooned: slot.ballooned,
                        pool_surrendered: self.pool.surrendered_by(vm),
                        torn_down: false,
                    },
                    (None, Some(view)) => view,
                    (None, None) => unreachable!("torn-down slot keeps its final view"),
                }
            })
            .collect()
    }

    /// Whole-host static analysis: every live machine's [`Machine::lint`]
    /// with its diagnostics tagged by VM, the host-scope shootdown race
    /// pass ([`detect_host_shootdown_races`]) over every VM's protocol log
    /// — torn-down VMs included, through the log harvested at teardown —
    /// plus the host-scope frame accounting checks (cross-VM aliasing,
    /// teardown leaks, balloon conservation) and the pool's conservation
    /// invariant.
    ///
    /// A live machine's own lint already runs the per-VM race pass, so the
    /// host-scope pass re-derives those diagnostics; exact duplicates are
    /// collapsed after sorting.
    pub fn lint(&mut self) -> LintReport {
        let mut diags = Vec::new();
        for i in 0..self.vms.len() {
            let vm = Self::slot_vm(i);
            if let Some(m) = self.vms[i].machine.as_mut() {
                for d in m.lint().diags {
                    diags.push(d.vm(vm));
                }
            }
        }
        let views: Vec<VmShootdownView<'_>> = self
            .vms
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let vm = Self::slot_vm(i);
                let (log, frame_base) = match &slot.machine {
                    Some(m) => (m.shootdown_log()?, m.mem().frame_base()),
                    None => (
                        slot.shootdown_log.as_ref()?,
                        slot.final_view.as_ref()?.frame_base,
                    ),
                };
                Some(VmShootdownView {
                    vm,
                    frame_base,
                    frame_span: agile_mem::VM_FRAME_SPAN,
                    log,
                })
            })
            .collect();
        diags.extend(detect_host_shootdown_races(&views));
        diags.extend(check_host_frames(&self.frame_views()));
        if !self.pool.is_conserved() {
            // free + Σleases must equal capacity; a violation means some
            // capacity is counted twice (or lost), i.e. aliased.
            diags.push(crate::analyze::LintDiag {
                code: crate::analyze::LintCode::CrossVmFrameAlias,
                severity: crate::analyze::LintSeverity::Error,
                vm: None,
                pid: None,
                gva: None,
                level: None,
                frame: None,
                detail: format!(
                    "pool conservation broken: {} free + {} leased != {} capacity",
                    self.pool.free(),
                    self.pool.leased_total(),
                    self.pool.capacity()
                ),
            });
        }
        let mut report = LintReport::from_diags(diags);
        // A live VM's race diags arrive twice (its own lint and the
        // host-scope pass); sorted order makes the copies adjacent.
        report.diags.dedup();
        report
    }

    /// The shootdown protocol log of `vm`: the live machine's log, or the
    /// one harvested at teardown. `None` when the VM never recorded one.
    #[must_use]
    pub fn shootdown_log_of(&self, vm: VmId) -> Option<&ShootdownLog> {
        let slot = self.vms.get(vm.raw() as usize)?;
        match &slot.machine {
            Some(m) => m.shootdown_log(),
            None => slot.shootdown_log.as_ref(),
        }
    }

    /// Host-level degradation events recorded so far.
    #[must_use]
    pub fn host_events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Oracle violations accumulated across every VM (0 is the chaos
    /// contract's requirement after healing).
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.vms
            .iter()
            .map(|s| s.violations.len() + s.machine.as_ref().map_or(0, |m| m.violations().len()))
            .sum()
    }

    /// The full deterministic artifact: the host's event log followed by
    /// each VM's, in VM-id order. Two same-seed runs render byte-
    /// identically; the CI host job diffs exactly this string.
    #[must_use]
    pub fn render_full_log(&self) -> String {
        let mut out = String::from("== host ==\n");
        out.push_str(&render_log(&self.events));
        for (i, slot) in self.vms.iter().enumerate() {
            out.push_str(&format!("== vm {i} ==\n"));
            match &slot.machine {
                Some(m) => out.push_str(&render_log(m.degradation_events())),
                None => out.push_str(&render_log(&slot.events)),
            }
        }
        out
    }
}

fn event_name(event: &Event) -> &'static str {
    match event {
        Event::Access { .. } => "access",
        Event::Mmap { .. } => "mmap",
        Event::Munmap { .. } => "munmap",
        Event::MarkCow { .. } => "mark-cow",
        Event::ClockScan { .. } => "clock-scan",
        Event::ContextSwitch { .. } => "context-switch",
        Event::Tick => "tick",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_guest::{Vma, VmaBacking};
    use agile_types::PageSize;
    use agile_vmm::{AgileOptions, Technique};
    use agile_workloads::{ChurnSpec, Pattern};

    fn spec(name: &str, accesses: u64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            footprint: 1 << 20,
            pattern: Pattern::Uniform,
            write_fraction: 0.3,
            accesses,
            accesses_per_tick: (accesses / 4).max(1),
            churn: ChurnSpec {
                remap_every: Some(200),
                remap_pages: 8,
                cow_every: Some(350),
                cow_pages: 8,
                clock_scan_every: Some(500),
                scan_pages: 16,
                churn_zone: 0.25,
                ctx_switch_every: None,
                processes: 1,
            },
            prefault: false,
            prefault_writes: true,
            seed,
        }
    }

    fn overcommitted_pair_sized(pool: u64, accesses: u64) -> Host {
        let mut host = Host::new(HostConfig::new(pool).initial_lease(64));
        for i in 0..2u64 {
            host.add_vm(
                SystemConfig::new(Technique::Agile(AgileOptions::default())),
                spec(&format!("vm{i}"), accesses, 0xA0 + i),
                FaultPlan::new(0xB0 + i).drop_cross_vm_shootdowns(250),
            );
        }
        host
    }

    fn overcommitted_pair(pool: u64) -> Host {
        overcommitted_pair_sized(pool, 800)
    }

    #[test]
    fn run_steps_paces_and_terminates() {
        let mut host = Host::new(HostConfig::new(240).initial_lease(64));
        for i in 0..2u64 {
            host.add_vm(
                SystemConfig::new(Technique::Agile(AgileOptions::default())),
                spec(&format!("vm{i}"), 300, 0xA0 + i),
                FaultPlan::new(0xB0 + i).drop_cross_vm_shootdowns(250),
            );
        }
        let mut rounds = 0;
        while host.run_steps(50) {
            rounds += 1;
            assert!(rounds < 100, "run_steps failed to make progress");
        }
        // Both 300-event workloads (plus their tick/churn events) ran.
        assert!(host.steps >= 600, "steps: {}", host.steps);
        assert!(host.stats_of(VmId::new(0)).is_some());
        assert!(host.stats_of(VmId::new(1)).is_some());
    }

    #[test]
    fn overcommitted_vms_complete_without_panic_and_heal_clean() {
        let mut host = overcommitted_pair(320);
        host.run();
        for i in 0..2 {
            let vm = VmId::new(i);
            let residual = host
                .machine_mut(vm)
                .expect("vm is live")
                .heal_stale_caches();
            assert!(residual.is_empty(), "vm {i}: residual {residual:?}");
            assert!(host.stats_of(vm).is_some(), "vm {i} finished");
        }
        assert_eq!(host.total_violations(), 0);
        assert!(host.pool().is_conserved());
        let report = host.lint();
        assert!(report.diags.is_empty(), "host lint: {:?}", report.diags);
    }

    #[test]
    fn pressure_surfaces_as_typed_events_not_panics() {
        // A pool this small forces the arbiter through its whole chain.
        let mut host = overcommitted_pair(140);
        host.run();
        let all_kinds: Vec<DegradationKind> = host
            .host_events()
            .iter()
            .map(|e| e.kind)
            .chain((0..2).flat_map(|i| {
                host.machine(VmId::new(i))
                    .expect("live")
                    .degradation_events()
                    .iter()
                    .map(|e| e.kind)
            }))
            .collect();
        assert!(
            all_kinds.contains(&DegradationKind::BalloonRequest)
                || all_kinds.contains(&DegradationKind::VmStarved)
                || all_kinds.contains(&DegradationKind::TechniqueDemotion),
            "overcommit at 140 frames must exercise the arbiter: {all_kinds:?}"
        );
        assert_eq!(host.total_violations(), 0);
    }

    #[test]
    fn same_seeds_render_byte_identical_logs() {
        let run = || {
            let mut host = overcommitted_pair_sized(200, 500);
            host.run();
            for i in 0..2 {
                let _ = host
                    .machine_mut(VmId::new(i))
                    .expect("live")
                    .heal_stale_caches();
            }
            host.render_full_log()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds must render byte-identical host logs");
    }

    #[test]
    fn teardown_returns_lease_and_lints_clean() {
        let mut host = overcommitted_pair(400);
        host.run_steps(500);
        let free_before = host.pool().free();
        host.teardown_vm(VmId::new(0));
        assert!(host.pool().free() > free_before, "teardown frees the lease");
        assert_eq!(host.pool().lease_of(VmId::new(0)), 0);
        assert!(host.pool().is_conserved());
        host.run();
        let report = host.lint();
        assert!(
            report.diags.is_empty(),
            "post-teardown lint: {:?}",
            report.diags
        );
    }

    #[test]
    fn teardown_harvests_the_shootdown_log_for_host_scope_races() {
        let mut host = overcommitted_pair(400);
        host.run_steps(500);
        host.teardown_vm(VmId::new(0));
        host.run();
        // Chaos arming implies shootdown logging, so both VMs recorded the
        // protocol — the torn-down one through the harvested log.
        let harvested = host
            .shootdown_log_of(VmId::new(0))
            .expect("teardown harvests the log");
        assert!(!harvested.is_empty(), "vm 0 recorded protocol traffic");
        assert!(host.shootdown_log_of(VmId::new(1)).is_some());
        // The cross-VM drop plan's windows all healed (full-ASID flushes
        // subsume the dropped scopes), every frame stayed in its owner's
        // span, and the host-scope pass is idempotent over the merge with
        // the live machine's own lint.
        let first = host.lint();
        assert!(first.is_clean(), "host-scope races: {}", first.render());
        let second = host.lint();
        assert_eq!(first.render(), second.render(), "lint must be pure");
    }

    #[test]
    fn host_lint_flags_a_planted_out_of_span_frame() {
        let mut host = overcommitted_pair(400);
        host.run_steps(300);
        // Plant a protocol event naming a frame in the *other* VM's span:
        // an in-span free under an applied flush would be clean, so any
        // diagnostic below is the cross-VM ownership check firing.
        let foreign = agile_mem::VM_FRAME_SPAN + 9;
        host.machine_mut(VmId::new(0))
            .expect("live")
            .chaos_log_shootdown(crate::analyze::ShootdownEvent::FrameFreed {
                access: 1,
                batch: u64::MAX,
                frame: agile_types::HostFrame::new(foreign),
            });
        let report = host.lint();
        let alias = report
            .diags
            .iter()
            .find(|d| {
                d.code == crate::analyze::LintCode::CrossVmFrameAlias
                    && d.frame == Some(agile_types::HostFrame::new(foreign))
            })
            .expect("planted out-of-span frame must be flagged");
        assert_eq!(alias.vm, Some(VmId::new(0)));
        assert!(alias.detail.contains("vm 1"), "owner named: {alias}");
    }

    #[test]
    fn migration_rehomes_every_leaf_and_heals() {
        let mut host = overcommitted_pair(512);
        host.run_steps(400);
        // A host-managed service process on VM 0 with a touched region.
        let src = VmId::new(0);
        let dst = VmId::new(1);
        // Service touches run outside dispatch (no arbiter in front of
        // them), so grow the source lease first — otherwise the machine's
        // internal reclaim may evict earlier service pages and the leaf
        // snapshot comes up short.
        let granted = host.pool.grant(src, 128);
        assert!(granted >= 96, "test needs headroom for the service region");
        let lease = host.pool.lease_of(src);
        let pid = {
            let m = host.machine_mut(src).expect("live src");
            m.set_frame_budget(Some(lease));
            let pid = m.spawn_process();
            let prev = m.current_pid();
            let vma = Vma {
                start: 0x5000_0000,
                len: 64 * 0x1000,
                writable: true,
                backing: VmaBacking::Anon,
                max_page: PageSize::Size4K,
            };
            m.host_mmap_vma(pid, &vma);
            m.switch_to(pid);
            for p in 0..64u64 {
                m.try_touch(0x5000_0000 + p * 0x1000, p % 2 == 0)
                    .expect("service touch");
            }
            m.switch_to(prev);
            pid
        };
        let outcome = host.migrate_process(src, pid, dst);
        assert_eq!(outcome.pages_moved + outcome.pages_skipped, 64);
        assert_eq!(outcome.residual_violations, 0);
        assert!(
            outcome.frames_surrendered > 0,
            "source teardown must return frames to the pool"
        );
        // Finish both workloads after the migration; the host stays sane.
        host.run();
        assert_eq!(host.total_violations(), 0);
        let report = host.lint();
        assert!(
            report.diags.is_empty(),
            "post-migration lint: {:?}",
            report.diags
        );
    }

    #[test]
    fn pressure_free_migration_passes_the_differ() {
        // A pool big enough that neither replay skips nor reclaim fires:
        // the differ must actually run and find zero unintended changes.
        let mut host = Host::new(HostConfig::new(2048).initial_lease(512));
        for i in 0..2u64 {
            host.add_vm(
                SystemConfig::new(Technique::Agile(AgileOptions::default())),
                spec(&format!("roomy{i}"), 400, 0xE0 + i),
                FaultPlan::new(0xF0 + i),
            );
        }
        host.run_steps(200);
        let src = VmId::new(0);
        let dst = VmId::new(1);
        let pid = {
            let m = host.machine_mut(src).expect("live src");
            let pid = m.spawn_process();
            let prev = m.current_pid();
            let vma = Vma {
                start: 0x5000_0000,
                len: 64 * 0x1000,
                writable: true,
                backing: VmaBacking::Anon,
                max_page: PageSize::Size4K,
            };
            m.host_mmap_vma(pid, &vma);
            m.switch_to(pid);
            for p in 0..64u64 {
                m.try_touch(0x5000_0000 + p * 0x1000, p % 2 == 0)
                    .expect("service touch");
            }
            m.switch_to(prev);
            pid
        };
        let outcome = host.migrate_process(src, pid, dst);
        assert!(outcome.diff_checked, "no pressure: the differ must run");
        assert_eq!(outcome.pages_moved, 64);
        assert_eq!(outcome.pages_skipped, 0);
        assert_eq!(outcome.residual_violations, 0, "differ must come up clean");
        host.run();
        assert_eq!(host.total_violations(), 0);
    }

    #[test]
    fn starved_vm_defers_maintenance_but_never_dies() {
        // Nearly no pool: VM 1 can barely get a lease after VM 0.
        let mut host = Host::new(HostConfig::new(96).initial_lease(80));
        for i in 0..2u64 {
            host.add_vm(
                SystemConfig::new(Technique::Shadow),
                spec(&format!("tight{i}"), 500, 0xC0 + i),
                FaultPlan::new(0xD0 + i),
            );
        }
        host.run();
        assert_eq!(host.total_violations(), 0);
        let starved = host
            .host_events()
            .iter()
            .any(|e| e.kind == DegradationKind::VmStarved);
        let oom = (0..2).any(|i| {
            host.machine(VmId::new(i))
                .expect("live")
                .degradation_events()
                .iter()
                .any(|e| e.kind == DegradationKind::OomSkip)
        });
        assert!(
            starved || oom,
            "a 96-frame pool must starve someone: host={:?}",
            host.host_events()
        );
    }
}
