//! `agile-lint`: whole-state static analysis of a paused machine.
//!
//! The runtime verify oracle ([`crate::verify`]) only cross-checks
//! translations the workload happens to touch, and the chaos layer
//! ([`crate::chaos`]) only proves faults heal on the paths it drives.
//! Neither can prove a *quiescent* machine state is well-formed. This
//! module can: it inspects the materialized radix tables and the recorded
//! shootdown protocol without executing a single access.
//!
//! The pass has two halves:
//!
//! **Part A — structural page-table analyzer** ([`analyze`]). Enumerates
//! every shadow/guest/host radix table through the read-only [`Vmm`] and
//! [`PhysMem`] accessors and checks the paper's structural invariants:
//!
//! * **Frame ownership** (paper §III-B shadow table residency): every live
//!   host page-table page must be reachable from exactly one owner — the
//!   host (EPT) tree, one process's shadow tree, or the backing of a
//!   registered guest page-table page. Zero owners is a leak
//!   ([`LintCode::OrphanFrame`]), two or more is an alias
//!   ([`LintCode::MultiOwnedFrame`]).
//! * **Shadow-permission monotonicity** (paper §III-A: a shadow leaf merges
//!   the guest and host translations): every shadow leaf must translate to
//!   the same frame as the guest∘host composition
//!   ([`LintCode::ShadowFrameMismatch`]) and must never grant write
//!   permission beyond the guest ∩ host intersection
//!   ([`LintCode::ShadowPermExceeds`]). It may be *more* restrictive —
//!   dirty-bit tracking and COW legitimately install read-only leaves.
//! * **Switching-bit well-formedness** (paper §III-A, Figure 3: the
//!   switching bit partitions every walk path into a shadow prefix and a
//!   nested suffix): switching entries may exist only under agile paging
//!   with the address space not fully nested
//!   ([`LintCode::SwitchingBitForbidden`]); each must point at the host
//!   backing of the nested-mode guest table page one level down
//!   ([`LintCode::SwitchingTargetInvalid`]); and no shadow-owned table
//!   memory may sit below a set switching bit
//!   ([`LintCode::ShadowBelowSwitching`]). The guest-side image of the
//!   same partition — once a walk path enters nested mode it never returns
//!   to shadow — is checked as [`LintCode::ModePartition`].
//! * **Cross-table A/D-bit consistency** (paper §III-B: the VMM sets guest
//!   A/D bits when it builds shadow entries; §IV hardware option 1 moves
//!   that to the walker): a dirty or writable shadow leaf whose guest leaf
//!   is not dirty means the dirty-tracking protocol was bypassed
//!   ([`LintCode::AdBitInconsistent`]).
//! * **Huge-page/4 KiB alias conflicts**: a leaf spanning more than the
//!   effective guest ∩ host page size, or two overlapping TLB entries that
//!   disagree about the overlap, alias one physical page under two
//!   granularities ([`LintCode::HugeAliasConflict`]).
//!
//! **Part B — shootdown-protocol race detector**
//! ([`detect_shootdown_races`]). A happens-before pass over the
//! [`ShootdownLog`] the machine records (flush requests in
//! `Vmm::take_pending_flushes` order, their delivery fates, table-page
//! frees, and allocator reuse): a table frame freed under a shootdown that
//! was dropped or deferred, with the allocator handing out new frames
//! before any covering flush applied, is exactly the missed-shootdown
//! use-after-free window the chaos layer injects
//! ([`LintCode::MissedShootdownReuse`]); a freed frame whose covering
//! shootdown never applied at all by the time the machine paused is
//! reported as [`LintCode::ShootdownNeverApplied`].
//!
//! All passes are strictly read-only and deterministic: diagnostics are
//! emitted in a canonical order, so two analyses of the same state render
//! byte-identically.

use crate::runner::Json;
use crate::verify;
use agile_mem::PhysMem;
use agile_tlb::TlbHierarchy;
use agile_types::{
    CodecError, Dec, Enc, GuestFrame, HostFrame, Level, Persist, ProcessId, Pte, PteFlags, VmId,
};
use agile_vmm::{FlushRequest, GptPageMode, Technique, Vmm};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Typed code of one static-analysis diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// A live host page-table page is reachable from no owner (host tree,
    /// shadow tree, or guest-table backing): leaked table memory.
    OrphanFrame,
    /// A live host page-table page is claimed by two or more owners.
    MultiOwnedFrame,
    /// An interior (non-leaf, non-switching) entry points at a frame that
    /// is not a live table page.
    DanglingTablePointer,
    /// A registered guest page-table frame has no live host table backing.
    UnbackedGuestTable,
    /// A shadow (or merged) leaf translates to a frame other than what the
    /// guest∘host composition says, or maps a gVA the guest does not map.
    ShadowFrameMismatch,
    /// A shadow leaf grants write permission beyond guest ∩ host.
    ShadowPermExceeds,
    /// A shadow leaf's dirty/writable state is inconsistent with the guest
    /// leaf's dirty bit (the §III-B dirty-tracking protocol was bypassed).
    AdBitInconsistent,
    /// A switching entry exists where the technique or process mode forbids
    /// one (non-agile technique, or fully nested address space).
    SwitchingBitForbidden,
    /// A switching entry does not point at the host backing of a
    /// nested-mode guest table page at the level below it.
    SwitchingTargetInvalid,
    /// A switching entry points into shadow-owned table memory: shadow
    /// entries survive strictly below a set switching bit.
    ShadowBelowSwitching,
    /// A nested-mode guest page-table page has a non-nested child: the walk
    /// path would return from the nested suffix to a shadow prefix.
    ModePartition,
    /// A leaf or TLB entry aliases one physical range under two page sizes
    /// that disagree (span exceeds the effective guest ∩ host size, or two
    /// overlapping TLB entries translate the overlap differently).
    HugeAliasConflict,
    /// A table frame was freed under a dropped/deferred shootdown and the
    /// allocator handed out new frames before any covering flush applied.
    MissedShootdownReuse,
    /// A table frame was freed and its covering shootdown still had not
    /// applied when the machine paused (no reuse observed yet).
    ShootdownNeverApplied,
    /// Host scope: two VMs' frame extents overlap, or a VM holds more
    /// frames than its lease on the shared pool grants — either way, a
    /// frame is effectively owned by two VMs.
    CrossVmFrameAlias,
    /// Host scope: a VM still holds leased frames after teardown.
    TeardownFrameLeak,
    /// Host scope: frames a guest balloon surrendered never reached the
    /// shared pool (the arbiter lost them in transit).
    BalloonNotReturned,
    /// A technique-switch or migration transition changed the translation
    /// function, or moved state outside the intended subtree (found by the
    /// two-state differ, [`crate::snapshot::diff`]).
    TransitionDiverged,
}

impl LintCode {
    /// All codes, in report order.
    pub const ALL: [LintCode; 18] = [
        LintCode::OrphanFrame,
        LintCode::MultiOwnedFrame,
        LintCode::DanglingTablePointer,
        LintCode::UnbackedGuestTable,
        LintCode::ShadowFrameMismatch,
        LintCode::ShadowPermExceeds,
        LintCode::AdBitInconsistent,
        LintCode::SwitchingBitForbidden,
        LintCode::SwitchingTargetInvalid,
        LintCode::ShadowBelowSwitching,
        LintCode::ModePartition,
        LintCode::HugeAliasConflict,
        LintCode::MissedShootdownReuse,
        LintCode::ShootdownNeverApplied,
        LintCode::CrossVmFrameAlias,
        LintCode::TeardownFrameLeak,
        LintCode::BalloonNotReturned,
        LintCode::TransitionDiverged,
    ];

    /// Stable kebab-case label (used in rendered and JSON output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LintCode::OrphanFrame => "orphan-frame",
            LintCode::MultiOwnedFrame => "multi-owned-frame",
            LintCode::DanglingTablePointer => "dangling-table-pointer",
            LintCode::UnbackedGuestTable => "unbacked-guest-table",
            LintCode::ShadowFrameMismatch => "shadow-frame-mismatch",
            LintCode::ShadowPermExceeds => "shadow-perm-exceeds",
            LintCode::AdBitInconsistent => "ad-bit-inconsistent",
            LintCode::SwitchingBitForbidden => "switching-bit-forbidden",
            LintCode::SwitchingTargetInvalid => "switching-target-invalid",
            LintCode::ShadowBelowSwitching => "shadow-below-switching",
            LintCode::ModePartition => "mode-partition",
            LintCode::HugeAliasConflict => "huge-alias-conflict",
            LintCode::MissedShootdownReuse => "missed-shootdown-reuse",
            LintCode::ShootdownNeverApplied => "shootdown-never-applied",
            LintCode::CrossVmFrameAlias => "cross-vm-frame-alias",
            LintCode::TeardownFrameLeak => "teardown-frame-leak",
            LintCode::BalloonNotReturned => "balloon-not-returned",
            LintCode::TransitionDiverged => "transition-diverged",
        }
    }

    /// Default severity of the code.
    #[must_use]
    pub fn severity(self) -> LintSeverity {
        match self {
            // No reuse observed yet: the window is open but nothing stale
            // can have been handed out, so this is advisory.
            LintCode::ShootdownNeverApplied => LintSeverity::Warning,
            _ => LintSeverity::Error,
        }
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Advisory: suspicious but not yet a correctness violation.
    Warning,
    /// A structural invariant is broken.
    Error,
}

impl LintSeverity {
    fn label(self) -> &'static str {
        match self {
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        }
    }
}

/// One static-analysis diagnostic: the code, its severity, and the
/// gVA/level/frame context it concerns (like [`crate::Violation`], but for
/// state the workload never touched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    /// Which invariant is broken.
    pub code: LintCode,
    /// How serious it is.
    pub severity: LintSeverity,
    /// VM the diagnostic concerns, when the analysis is host-scoped
    /// (multi-VM). `None` for single-machine analyses.
    pub vm: Option<VmId>,
    /// Process whose tables the diagnostic concerns, when per-process.
    pub pid: Option<ProcessId>,
    /// Offending guest virtual address, when the check concerns one.
    pub gva: Option<u64>,
    /// Page-table level involved, when known.
    pub level: Option<Level>,
    /// Host frame involved, when known.
    pub frame: Option<HostFrame>,
    /// What exactly is wrong.
    pub detail: String,
}

impl LintDiag {
    pub(crate) fn new(code: LintCode, detail: String) -> Self {
        LintDiag {
            code,
            severity: code.severity(),
            vm: None,
            pid: None,
            gva: None,
            level: None,
            frame: None,
            detail,
        }
    }

    /// Tags the diagnostic with the VM it concerns (host-scope analyses).
    #[must_use]
    pub fn vm(mut self, vm: VmId) -> Self {
        self.vm = Some(vm);
        self
    }

    pub(crate) fn pid(mut self, pid: ProcessId) -> Self {
        self.pid = Some(pid);
        self
    }

    pub(crate) fn gva(mut self, gva: u64) -> Self {
        self.gva = Some(gva);
        self
    }

    fn level(mut self, level: Level) -> Self {
        self.level = Some(level);
        self
    }

    fn frame(mut self, frame: HostFrame) -> Self {
        self.frame = Some(frame);
        self
    }

    /// Renders the diagnostic as a stable sorted-key JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::Str(self.code.label().to_string())),
            ("detail", Json::Str(self.detail.clone())),
            (
                "frame",
                self.frame.map_or(Json::Null, |f| Json::UInt(f.raw())),
            ),
            (
                "gva",
                self.gva
                    .map_or(Json::Null, |g| Json::Str(format!("{g:#x}"))),
            ),
            (
                "level",
                self.level
                    .map_or(Json::Null, |l| Json::UInt(u64::from(l.number()))),
            ),
            (
                "pid",
                self.pid
                    .map_or(Json::Null, |p| Json::UInt(u64::from(p.raw()))),
            ),
            ("severity", Json::Str(self.severity.label().to_string())),
            (
                "vm",
                self.vm
                    .map_or(Json::Null, |v| Json::UInt(u64::from(v.raw()))),
            ),
        ])
    }
}

impl std::fmt::Display for LintDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.code.label())?;
        if let Some(vm) = self.vm {
            write!(f, " vm={}", vm.raw())?;
        }
        if let Some(pid) = self.pid {
            write!(f, " pid={}", pid.raw())?;
        }
        if let Some(gva) = self.gva {
            write!(f, " gva={gva:#x}")?;
        }
        if let Some(level) = self.level {
            write!(f, " level={level:?}")?;
        }
        if let Some(frame) = self.frame {
            write!(f, " frame={frame}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The result of one analysis pass: diagnostics in canonical order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All diagnostics found, sorted by (code, vm, pid, gva, frame,
    /// detail).
    pub diags: Vec<LintDiag>,
}

impl LintReport {
    /// Builds a report from raw diagnostics, sorting them into the
    /// canonical order (host-scope callers merge several machines'
    /// diagnostics before sorting).
    #[must_use]
    pub fn from_diags(mut diags: Vec<LintDiag>) -> Self {
        diags.sort_by(|a, b| {
            (
                a.code,
                a.vm.map(VmId::raw),
                a.pid.map(ProcessId::raw),
                a.gva,
                a.frame.map(HostFrame::raw),
                &a.detail,
            )
                .cmp(&(
                    b.code,
                    b.vm.map(VmId::raw),
                    b.pid.map(ProcessId::raw),
                    b.gva,
                    b.frame.map(HostFrame::raw),
                    &b.detail,
                ))
        });
        LintReport { diags }
    }

    /// True when nothing was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics with the given code.
    #[must_use]
    pub fn count(&self, code: LintCode) -> usize {
        self.diags.iter().filter(|d| d.code == code).count()
    }

    /// True when any diagnostic has [`LintSeverity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == LintSeverity::Error)
    }

    /// Renders one line per diagnostic (empty string when clean).
    #[must_use]
    pub fn render(&self) -> String {
        self.diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clean", Json::Bool(self.is_clean())),
            ("count", Json::UInt(self.diags.len() as u64)),
            (
                "diags",
                Json::Arr(self.diags.iter().map(LintDiag::to_json).collect()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Part A: structural page-table analyzer
// ---------------------------------------------------------------------

/// Walks a host-space radix tree from `root`, visiting every table page and
/// every present entry. Does not descend through leaves or switching
/// entries (a switching entry's target belongs to the guest, not this
/// tree). Dangling interior pointers are reported through `on_dangling`.
fn walk_host_tree(
    mem: &PhysMem,
    root: HostFrame,
    on_page: &mut dyn FnMut(HostFrame, Level),
    on_entry: &mut dyn FnMut(u64, Level, Pte),
    on_dangling: &mut dyn FnMut(u64, Level, HostFrame),
) {
    let mut stack = vec![(root, Level::top(), 0u64)];
    while let Some((frame, level, base)) = stack.pop() {
        if !mem.is_table(frame) {
            continue; // reported by the caller at the referencing entry
        }
        on_page(frame, level);
        let page = mem.table(frame).expect("checked above");
        for (index, pte) in page.present_entries() {
            let va = base + index as u64 * level.span_bytes();
            on_entry(va, level, pte);
            if pte.is_leaf_at(level) || pte.is_switching() {
                continue;
            }
            let child = pte.host_frame();
            if !mem.is_table(child) {
                on_dangling(va, level, child);
                continue;
            }
            stack.push((child, level.child().expect("interior level"), va));
        }
    }
}

/// Walks a guest radix tree (pages live in guest frames) from `root`.
fn walk_guest_tree(
    mem: &PhysMem,
    vmm: &Vmm,
    root: GuestFrame,
    on_page: &mut dyn FnMut(GuestFrame, Level),
    on_dangling: &mut dyn FnMut(u64, Level, GuestFrame),
) {
    let mut stack = vec![(root, Level::top(), 0u64)];
    while let Some((gframe, level, base)) = stack.pop() {
        let Some(backing) = vmm.backing(gframe) else {
            continue; // reported by the caller at the referencing entry
        };
        let Some(page) = mem.table(backing) else {
            continue;
        };
        on_page(gframe, level);
        for (index, pte) in page.present_entries() {
            let va = base + index as u64 * level.span_bytes();
            if pte.is_leaf_at(level) {
                continue;
            }
            let child = GuestFrame::new(pte.frame_raw());
            let live = vmm.backing(child).is_some_and(|h| mem.is_table(h));
            if !live {
                on_dangling(va, level, child);
                continue;
            }
            stack.push((child, level.child().expect("interior level"), va));
        }
    }
}

/// Frame-ownership pass: every live table page must have exactly one owner.
///
/// Returns whether the table graph is *structurally intact* (no dangling
/// pointers, no unbacked guest tables). The truth-comparison passes walk
/// tables through the infallible simulator read paths, which treat a
/// dereference of freed table memory as a fatal bug — so they only run on
/// an intact graph; on a broken one, the structural diagnostics emitted
/// here already pinpoint the breakage.
fn check_frame_ownership(mem: &PhysMem, vmm: &Vmm, out: &mut Vec<LintDiag>) -> bool {
    let mut owners: HashMap<u64, Vec<String>> = HashMap::new();
    let mut claim = |frame: HostFrame, owner: String| {
        owners.entry(frame.raw()).or_default().push(owner);
    };

    walk_host_tree(
        mem,
        vmm.hptr(),
        &mut |frame, _| claim(frame, "host-table".to_string()),
        &mut |_, _, _| {},
        &mut |gpa, level, child| {
            out.push(
                LintDiag::new(
                    LintCode::DanglingTablePointer,
                    format!("host table entry at gPA {gpa:#x} points at non-table {child}"),
                )
                .level(level)
                .frame(child),
            );
        },
    );

    for pid in vmm.processes() {
        if let Some(sptr) = vmm.spt_root(pid) {
            walk_host_tree(
                mem,
                sptr,
                &mut |frame, _| claim(frame, format!("shadow(pid {})", pid.raw())),
                &mut |_, _, _| {},
                &mut |va, level, child| {
                    out.push(
                        LintDiag::new(
                            LintCode::DanglingTablePointer,
                            format!("shadow table entry points at non-table {child}"),
                        )
                        .pid(pid)
                        .gva(va)
                        .level(level)
                        .frame(child),
                    );
                },
            );
        }
        if let Some(root) = vmm.gpt_root(pid) {
            walk_guest_tree(mem, vmm, root, &mut |_, _| {}, &mut |va, level, child| {
                out.push(
                    LintDiag::new(
                        LintCode::DanglingTablePointer,
                        format!(
                            "guest table entry points at guest frame {child} with no live \
                                 table backing"
                        ),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level),
                );
            });
        }
    }

    for gframe in vmm.guest_table_frames() {
        match vmm.backing(gframe) {
            Some(backing) if mem.is_table(backing) => {
                claim(backing, format!("guest-table {gframe}"));
            }
            other => {
                out.push(LintDiag::new(
                    LintCode::UnbackedGuestTable,
                    format!(
                        "registered guest table frame {gframe} has backing {other:?}, which \
                             is not a live table page"
                    ),
                ));
            }
        }
    }

    for frame in mem.table_frames() {
        match owners.get(&frame.raw()) {
            None => out.push(
                LintDiag::new(
                    LintCode::OrphanFrame,
                    "live table page reachable from no owner (leaked)".to_string(),
                )
                .frame(frame),
            ),
            Some(claims) if claims.len() > 1 => out.push(
                LintDiag::new(
                    LintCode::MultiOwnedFrame,
                    format!(
                        "table page claimed by {} owners: {}",
                        claims.len(),
                        claims.join(", ")
                    ),
                )
                .frame(frame),
            ),
            Some(_) => {}
        }
    }

    !out.iter().any(|d| {
        matches!(
            d.code,
            LintCode::DanglingTablePointer | LintCode::UnbackedGuestTable
        )
    })
}

/// True when any guest table page on `gva`'s walk path is in the KVM-style
/// unsynced state — its derived shadow entries are architecturally allowed
/// to be stale until the next synchronization point, so strict
/// shadow-vs-truth checks must not fire.
fn path_unsynced(mem: &PhysMem, vmm: &Vmm, pid: ProcessId, gva: u64) -> bool {
    Level::top()
        .walk_order()
        .any(|level| vmm.page_mode(mem, pid, gva, level) == Some(GptPageMode::Unsynced))
}

/// Shadow-table sweep: permission monotonicity, frame agreement, A/D
/// consistency, huge/4K alias spans, and switching-bit well-formedness.
///
/// `tables_intact` gates the truth comparisons (reference translation,
/// page-mode probes): they dereference table pages through the infallible
/// simulator read paths and must not run over a structurally broken graph.
fn check_shadow_tables(mem: &PhysMem, vmm: &Vmm, tables_intact: bool, out: &mut Vec<LintDiag>) {
    let technique = vmm.technique();
    let agile = matches!(technique, Technique::Agile(_));
    let hw_ad = matches!(technique, Technique::Agile(o) if o.hw_ad_bits);
    let native = matches!(technique, Technique::Native);

    // Backing ⇒ registered guest-table-frame index, for switching-target
    // validation.
    let mut guest_backing: HashMap<u64, GuestFrame> = HashMap::new();
    for gframe in vmm.guest_table_frames() {
        if let Some(h) = vmm.backing(gframe) {
            guest_backing.insert(h.raw(), gframe);
        }
    }

    for pid in vmm.processes() {
        let Some(sptr) = vmm.spt_root(pid) else {
            continue;
        };
        // With the whole address space nested (SHSP nested phase, agile
        // storm fallback / pre-engagement) the walker ignores the shadow
        // table entirely, so residual shadow content is stale-but-inert:
        // skip truth comparisons, but still flag switching entries where
        // the mode forbids them.
        let inert = vmm.full_nested(pid) || vmm.root_nested(pid);
        let pages: HashMap<u64, agile_vmm::GptPageInfo> = vmm
            .gpt_pages(pid)
            .into_iter()
            .map(|(g, i)| (g.raw(), i))
            .collect();

        let mut entries: Vec<(u64, Level, Pte)> = Vec::new();
        walk_host_tree(
            mem,
            sptr,
            &mut |_, _| {},
            &mut |va, level, pte| entries.push((va, level, pte)),
            &mut |_, _, _| {}, // dangling pointers reported by the ownership pass
        );

        for (va, level, pte) in entries {
            if pte.is_switching() {
                check_switching_entry(
                    mem,
                    vmm,
                    pid,
                    va,
                    level,
                    pte,
                    agile,
                    inert,
                    &guest_backing,
                    &pages,
                    out,
                );
                continue;
            }
            if !pte.is_leaf_at(level) || inert || !tables_intact || path_unsynced(mem, vmm, pid, va)
            {
                continue;
            }
            let size = pte.leaf_size(level).expect("leaf entry");
            let Some(reference) = verify::reference_translate(mem, vmm, pid, va) else {
                out.push(
                    LintDiag::new(
                        LintCode::ShadowFrameMismatch,
                        format!(
                            "shadow leaf maps a gVA the guest does not map (to frame {})",
                            pte.host_frame()
                        ),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level),
                );
                continue;
            };
            if size > reference.eff_size {
                out.push(
                    LintDiag::new(
                        LintCode::HugeAliasConflict,
                        format!(
                            "shadow leaf spans {} but the effective guest ∩ host size is {} \
                             (guest {}, host {})",
                            size.label(),
                            reference.eff_size.label(),
                            reference.guest_size.label(),
                            reference.host_size.label(),
                        ),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level),
                );
            } else if pte.host_frame() != reference.frame_4k {
                out.push(
                    LintDiag::new(
                        LintCode::ShadowFrameMismatch,
                        format!(
                            "shadow leaf maps frame {}, guest∘host composition says {}",
                            pte.host_frame(),
                            reference.frame_4k
                        ),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level)
                    .frame(pte.host_frame()),
                );
            }
            if pte.is_writable() && !reference.writable {
                out.push(
                    LintDiag::new(
                        LintCode::ShadowPermExceeds,
                        "shadow leaf permits writes beyond the guest ∩ host intersection"
                            .to_string(),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level),
                );
            }
            // A/D protocol (§III-B): without the hardware A/D optimization
            // a shadow leaf may be writable or dirty only after the VMM
            // set the guest leaf's dirty bit. Native's merged table does
            // not participate (hardware A/D lands in the guest table
            // directly).
            if !native {
                let guest_dirty = vmm
                    .gpt_lookup(mem, pid, va)
                    .is_some_and(|(g, _)| g.flags().contains(PteFlags::DIRTY));
                if pte.flags().contains(PteFlags::DIRTY) && !guest_dirty {
                    out.push(
                        LintDiag::new(
                            LintCode::AdBitInconsistent,
                            "shadow leaf is dirty but the guest leaf is not".to_string(),
                        )
                        .pid(pid)
                        .gva(va)
                        .level(level),
                    );
                } else if !hw_ad && pte.is_writable() && !guest_dirty {
                    out.push(
                        LintDiag::new(
                            LintCode::AdBitInconsistent,
                            "shadow leaf is writable but the guest leaf is not dirty (the \
                             dirty-tracking trap was bypassed)"
                                .to_string(),
                        )
                        .pid(pid)
                        .gva(va)
                        .level(level),
                    );
                }
            }
        }
    }
}

/// Validates one switching entry (see module docs for the invariant set).
#[allow(clippy::too_many_arguments)] // one entry plus the per-process context it is judged against
fn check_switching_entry(
    mem: &PhysMem,
    vmm: &Vmm,
    pid: ProcessId,
    va: u64,
    level: Level,
    pte: Pte,
    agile: bool,
    inert: bool,
    guest_backing: &HashMap<u64, GuestFrame>,
    pages: &HashMap<u64, agile_vmm::GptPageInfo>,
    out: &mut Vec<LintDiag>,
) {
    if !agile {
        out.push(
            LintDiag::new(
                LintCode::SwitchingBitForbidden,
                format!(
                    "switching entry under {:?}, which never sets the switching bit",
                    vmm.technique()
                ),
            )
            .pid(pid)
            .gva(va)
            .level(level),
        );
        return;
    }
    if vmm.full_nested(pid) {
        out.push(
            LintDiag::new(
                LintCode::SwitchingBitForbidden,
                "switching entry while the address space is fully nested (pure-nested mode \
                 never materializes shadow entries)"
                    .to_string(),
            )
            .pid(pid)
            .gva(va)
            .level(level),
        );
        return;
    }
    if inert {
        return; // root_nested: the spt is ignored; stale targets are inert
    }
    let target = pte.host_frame();
    match guest_backing.get(&target.raw()) {
        Some(gframe) => {
            let info = pages.get(&gframe.raw());
            let child_level = level.child();
            let ok =
                info.is_some_and(|i| i.mode == GptPageMode::Nested && Some(i.level) == child_level);
            if !ok {
                let mode = info.map(|i| i.mode);
                out.push(
                    LintDiag::new(
                        LintCode::SwitchingTargetInvalid,
                        format!(
                            "switching entry targets guest table {gframe} (mode {mode:?}), \
                             expected a nested-mode page holding {child_level:?} entries"
                        ),
                    )
                    .pid(pid)
                    .gva(va)
                    .level(level)
                    .frame(target),
                );
            }
        }
        None if mem.is_table(target) => out.push(
            LintDiag::new(
                LintCode::ShadowBelowSwitching,
                "switching entry points into shadow/host-owned table memory: shadow entries \
                 survive below the switching bit"
                    .to_string(),
            )
            .pid(pid)
            .gva(va)
            .level(level)
            .frame(target),
        ),
        None => out.push(
            LintDiag::new(
                LintCode::SwitchingTargetInvalid,
                format!("switching entry targets {target}, which is not a live table page"),
            )
            .pid(pid)
            .gva(va)
            .level(level)
            .frame(target),
        ),
    }
}

/// Guest-side image of the Figure 3 partition: below a nested-mode page,
/// every page must be nested.
fn check_mode_partition(mem: &PhysMem, vmm: &Vmm, out: &mut Vec<LintDiag>) {
    for pid in vmm.processes() {
        let pages = vmm.gpt_pages(pid);
        let by_frame: HashMap<u64, GptPageMode> =
            pages.iter().map(|(g, i)| (g.raw(), i.mode)).collect();
        for (gframe, info) in &pages {
            if info.mode != GptPageMode::Nested || info.level == Level::leaf() {
                continue;
            }
            let Some(backing) = vmm.backing(*gframe) else {
                continue; // reported as UnbackedGuestTable
            };
            let Some(page) = mem.table(backing) else {
                continue;
            };
            for (index, pte) in page.present_entries() {
                if pte.is_leaf_at(info.level) {
                    continue;
                }
                let child = pte.frame_raw();
                if let Some(mode) = by_frame.get(&child) {
                    if *mode != GptPageMode::Nested {
                        let va = info.va_base + index as u64 * info.level.span_bytes();
                        out.push(
                            LintDiag::new(
                                LintCode::ModePartition,
                                format!(
                                    "guest table page {gframe} is nested but its child \
                                     {child:#x} is {mode:?}: the walk path would switch back \
                                     from nested to shadow"
                                ),
                            )
                            .pid(pid)
                            .gva(va)
                            .level(info.level),
                        );
                    }
                }
            }
        }
    }
}

/// TLB overlap pass: two entries of one address space covering the same
/// gVA must agree on the translation of the overlap.
fn check_tlb_aliases(tlb: &TlbHierarchy, out: &mut Vec<LintDiag>) {
    let mut entries = tlb.entries();
    entries.sort_by_key(|(asid, va, e)| (asid.raw(), va.raw(), e.size, e.frame.raw()));
    let mut active: Vec<(u64, usize)> = Vec::new(); // (end, index into entries)
    for j in 0..entries.len() {
        let (asid_j, va_j, e_j) = &entries[j];
        let start_j = va_j.raw();
        active.retain(|(end, i)| *end > start_j && entries[*i].0 == *asid_j);
        for &(_, i) in &active {
            let (_, va_i, e_i) = &entries[i];
            // The overlap starts at the later of the two bases.
            let base_4k = start_j >> 12;
            let f_i = e_i.frame.add(base_4k - (va_i.raw() >> 12));
            let f_j = e_j.frame;
            if f_i != f_j {
                out.push(
                    LintDiag::new(
                        LintCode::HugeAliasConflict,
                        format!(
                            "TLB entries of sizes {} and {} overlap at {start_j:#x} but \
                             translate it to {f_i} vs {f_j}",
                            e_i.size.label(),
                            e_j.size.label(),
                        ),
                    )
                    .gva(start_j)
                    .frame(f_j),
                );
            }
        }
        active.push((start_j + e_j.size.bytes(), j));
    }
}

/// Runs the full Part A structural analysis (and, when a [`ShootdownLog`]
/// is provided, the Part B race detection) over a paused machine state.
///
/// Strictly read-only; diagnostics come back in canonical order.
#[must_use]
pub fn analyze(
    mem: &PhysMem,
    vmm: &Vmm,
    tlb: &TlbHierarchy,
    log: Option<&ShootdownLog>,
) -> LintReport {
    let mut out = Vec::new();
    let tables_intact = check_frame_ownership(mem, vmm, &mut out);
    check_shadow_tables(mem, vmm, tables_intact, &mut out);
    check_mode_partition(mem, vmm, &mut out);
    check_tlb_aliases(tlb, &mut out);
    if let Some(log) = log {
        out.extend(detect_shootdown_races(log));
    }
    LintReport::from_diags(out)
}

// ---------------------------------------------------------------------
// Host scope: shared-pool frame accounting across VMs
// ---------------------------------------------------------------------

/// One VM's frame-accounting snapshot as the host sees it, the input to
/// [`check_host_frames`]. Live VMs are snapshotted directly from their
/// machines; torn-down VMs from the state captured at teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmFrameView {
    /// Which VM this view describes.
    pub vm: VmId,
    /// First frame number of the VM's span (reserved, never allocated).
    pub frame_base: u64,
    /// Frames the VM's allocator has handed out, span-relative (its
    /// extent is `[frame_base + 1, frame_base + frames_allocated]`).
    pub frames_allocated: u64,
    /// Frames currently charged against the VM's budget.
    pub frames_charged: u64,
    /// The VM's lease on the shared pool.
    pub lease: u64,
    /// Frames the guest's balloon has surrendered to the host, cumulative.
    pub ballooned: u64,
    /// Frames the pool records as surrendered by this VM, cumulative.
    pub pool_surrendered: u64,
    /// Whether the VM has been torn down.
    pub torn_down: bool,
}

/// Host-scope lint: no frame owned by two VMs (span overlap or a lease
/// overrun), no VM holding leased frames after teardown, and every
/// balloon-surrendered frame actually returned to the pool. Pure and
/// deterministic; diagnostics come back unsorted (the caller merges them
/// into a [`LintReport`]).
#[must_use]
pub fn check_host_frames(views: &[VmFrameView]) -> Vec<LintDiag> {
    let mut out = Vec::new();
    let mut sorted: Vec<&VmFrameView> = views.iter().collect();
    sorted.sort_by_key(|v| v.frame_base);
    for pair in sorted.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let lo_end = lo.frame_base + lo.frames_allocated;
        if lo_end > hi.frame_base {
            out.push(
                LintDiag::new(
                    LintCode::CrossVmFrameAlias,
                    format!(
                        "frame extent of vm {} (through {}) overlaps the span of vm {} \
                         (from {})",
                        lo.vm.raw(),
                        lo_end,
                        hi.vm.raw(),
                        hi.frame_base
                    ),
                )
                .vm(lo.vm)
                .frame(HostFrame::new(hi.frame_base)),
            );
        }
    }
    for v in views {
        // Lease enforcement concerns live VMs; a torn-down VM's charge
        // snapshot is historical (its leak check is the lease itself).
        if !v.torn_down && v.frames_charged > v.lease {
            out.push(
                LintDiag::new(
                    LintCode::CrossVmFrameAlias,
                    format!(
                        "vm {} holds {} frames against a lease of {} — the excess is \
                         capacity another VM also counts as its own",
                        v.vm.raw(),
                        v.frames_charged,
                        v.lease
                    ),
                )
                .vm(v.vm),
            );
        }
        if v.torn_down && v.lease > 0 {
            out.push(
                LintDiag::new(
                    LintCode::TeardownFrameLeak,
                    format!(
                        "vm {} was torn down but still leases {} frames",
                        v.vm.raw(),
                        v.lease
                    ),
                )
                .vm(v.vm),
            );
        }
        if v.ballooned != v.pool_surrendered {
            out.push(
                LintDiag::new(
                    LintCode::BalloonNotReturned,
                    format!(
                        "vm {} ballooned {} frames but the pool recorded {}",
                        v.vm.raw(),
                        v.ballooned,
                        v.pool_surrendered
                    ),
                )
                .vm(v.vm),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Part B: shootdown-protocol race detector
// ---------------------------------------------------------------------

/// The gVA-space scope one flush request covers, for happens-before
/// matching. An `Asid` request covers the whole address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushScope {
    /// Raw ASID the flush is tagged with.
    pub asid: u32,
    /// First covered gVA.
    pub start: u64,
    /// Covered length in bytes (`u64::MAX` for a full-ASID flush).
    pub len: u64,
}

impl FlushScope {
    /// The scope covering everything tagged with `asid`.
    #[must_use]
    pub fn asid_full(asid: u32) -> Self {
        FlushScope {
            asid,
            start: 0,
            len: u64::MAX,
        }
    }

    /// Scope of one [`FlushRequest`] (`None` for nested-TLB frame
    /// invalidations, which are synchronous and never raced).
    #[must_use]
    pub fn of_request(req: &FlushRequest) -> Option<FlushScope> {
        match *req {
            FlushRequest::Asid(asid) => Some(FlushScope::asid_full(asid.raw())),
            FlushRequest::Range { asid, start, len } => Some(FlushScope {
                asid: asid.raw(),
                start,
                len,
            }),
            FlushRequest::NtlbFrame(_) => None,
        }
    }

    fn end(&self) -> u64 {
        self.start.saturating_add(self.len)
    }

    /// True when an applied flush of scope `self` subsumes pending scope
    /// `other` (same address space, fully covered range).
    #[must_use]
    pub fn covers(&self, other: &FlushScope) -> bool {
        self.asid == other.asid && self.start <= other.start && self.end() >= other.end()
    }
}

/// One event of the shootdown protocol, in machine order. `access` is the
/// data-access index at which the event happened; `batch` groups the flush
/// requests drained together with the table frees of the same VMM
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShootdownEvent {
    /// The VMM emitted a flush request (canonical drain order).
    Requested {
        /// Access index.
        access: u64,
        /// Drain batch the request belongs to.
        batch: u64,
        /// What it covers.
        scope: FlushScope,
    },
    /// A flush was applied to the caching structures.
    Applied {
        /// Access index.
        access: u64,
        /// What was flushed.
        scope: FlushScope,
    },
    /// The chaos dice dropped a flush.
    Dropped {
        /// Access index.
        access: u64,
        /// Drain batch the request belonged to.
        batch: u64,
        /// What should have been flushed.
        scope: FlushScope,
    },
    /// The chaos dice deferred a flush (it applies later as `Applied`).
    Deferred {
        /// Access index.
        access: u64,
        /// Drain batch the request belonged to.
        batch: u64,
        /// Access index at which delivery is due.
        due: u64,
        /// What it covers.
        scope: FlushScope,
    },
    /// A page-table page was freed by the VMM operation of `batch`.
    FrameFreed {
        /// Access index.
        access: u64,
        /// Drain batch whose flushes cover the free.
        batch: u64,
        /// The freed frame.
        frame: HostFrame,
    },
    /// The allocator handed out new frames (first new frame named),
    /// consuming capacity that table frees credited back.
    FrameReused {
        /// Access index.
        access: u64,
        /// First frame allocated since the last observation.
        frame: HostFrame,
    },
}

impl Persist for FlushScope {
    fn save(&self, e: &mut Enc) {
        e.u32(self.asid);
        e.u64(self.start);
        e.u64(self.len);
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(FlushScope {
            asid: d.u32()?,
            start: d.u64()?,
            len: d.u64()?,
        })
    }
}

impl Persist for ShootdownEvent {
    fn save(&self, e: &mut Enc) {
        match *self {
            ShootdownEvent::Requested {
                access,
                batch,
                scope,
            } => {
                e.u8(0);
                e.u64(access);
                e.u64(batch);
                scope.save(e);
            }
            ShootdownEvent::Applied { access, scope } => {
                e.u8(1);
                e.u64(access);
                scope.save(e);
            }
            ShootdownEvent::Dropped {
                access,
                batch,
                scope,
            } => {
                e.u8(2);
                e.u64(access);
                e.u64(batch);
                scope.save(e);
            }
            ShootdownEvent::Deferred {
                access,
                batch,
                due,
                scope,
            } => {
                e.u8(3);
                e.u64(access);
                e.u64(batch);
                e.u64(due);
                scope.save(e);
            }
            ShootdownEvent::FrameFreed {
                access,
                batch,
                frame,
            } => {
                e.u8(4);
                e.u64(access);
                e.u64(batch);
                frame.save(e);
            }
            ShootdownEvent::FrameReused { access, frame } => {
                e.u8(5);
                e.u64(access);
                frame.save(e);
            }
        }
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        let tag = d.u8()?;
        Ok(match tag {
            0 => ShootdownEvent::Requested {
                access: d.u64()?,
                batch: d.u64()?,
                scope: FlushScope::load(d)?,
            },
            1 => ShootdownEvent::Applied {
                access: d.u64()?,
                scope: FlushScope::load(d)?,
            },
            2 => ShootdownEvent::Dropped {
                access: d.u64()?,
                batch: d.u64()?,
                scope: FlushScope::load(d)?,
            },
            3 => ShootdownEvent::Deferred {
                access: d.u64()?,
                batch: d.u64()?,
                due: d.u64()?,
                scope: FlushScope::load(d)?,
            },
            4 => ShootdownEvent::FrameFreed {
                access: d.u64()?,
                batch: d.u64()?,
                frame: HostFrame::load(d)?,
            },
            5 => ShootdownEvent::FrameReused {
                access: d.u64()?,
                frame: HostFrame::load(d)?,
            },
            _ => return d.fail("unknown ShootdownEvent variant tag"),
        })
    }
}

impl Persist for ShootdownLog {
    fn save(&self, e: &mut Enc) {
        self.events.save(e);
        e.u64(self.truncated);
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(ShootdownLog {
            events: Vec::load(d)?,
            truncated: d.u64()?,
        })
    }
}

/// Cap on recorded protocol events; a truncated log is reported by the
/// detector so an analysis can never silently claim full coverage.
pub const MAX_SHOOTDOWN_EVENTS: usize = 65_536;

/// The machine's recorded shootdown protocol: an ordered event sequence
/// fed to [`detect_shootdown_races`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShootdownLog {
    /// Events in machine order.
    pub events: Vec<ShootdownEvent>,
    /// Events dropped after [`MAX_SHOOTDOWN_EVENTS`] was reached.
    pub truncated: u64,
}

impl ShootdownLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        ShootdownLog::default()
    }

    /// Appends an event, respecting the size cap.
    pub fn push(&mut self, event: ShootdownEvent) {
        if self.events.len() >= MAX_SHOOTDOWN_EVENTS {
            self.truncated += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Lockset-style happens-before pass over a [`ShootdownLog`].
///
/// A *window* opens when a drain batch both freed table frames and had
/// flushes dropped or deferred: until every such scope is subsumed by a
/// later `Applied` flush, translation-caching structures may still hold
/// pointers into the freed frames. If the allocator hands out new frames
/// while a window is open, the freed frame's capacity was reused before
/// the shootdown protocol finished — [`LintCode::MissedShootdownReuse`].
/// Windows still open at the end of the log (no reuse observed) are
/// reported as [`LintCode::ShootdownNeverApplied`].
#[must_use]
pub fn detect_shootdown_races(log: &ShootdownLog) -> Vec<LintDiag> {
    #[derive(Default)]
    struct Batch {
        pending: Vec<FlushScope>,
        freed: Vec<(HostFrame, u64)>,
    }
    let mut batches: BTreeMap<u64, Batch> = BTreeMap::new();
    let mut fired: HashSet<u64> = HashSet::new();
    let mut out = Vec::new();

    for event in &log.events {
        match event {
            ShootdownEvent::Requested { .. } => {}
            ShootdownEvent::Dropped { batch, scope, .. }
            | ShootdownEvent::Deferred { batch, scope, .. } => {
                batches.entry(*batch).or_default().pending.push(*scope);
            }
            ShootdownEvent::FrameFreed {
                batch,
                frame,
                access,
            } => {
                batches
                    .entry(*batch)
                    .or_default()
                    .freed
                    .push((*frame, *access));
            }
            ShootdownEvent::Applied { scope, .. } => {
                for batch in batches.values_mut() {
                    batch.pending.retain(|p| !scope.covers(p));
                }
            }
            ShootdownEvent::FrameReused { access, frame } => {
                for (id, batch) in &batches {
                    if batch.pending.is_empty() {
                        continue;
                    }
                    for (freed, freed_at) in &batch.freed {
                        if !fired.insert(freed.raw()) {
                            continue;
                        }
                        out.push(
                            LintDiag::new(
                                LintCode::MissedShootdownReuse,
                                format!(
                                    "table frame freed at access {freed_at} (batch {id}) was \
                                     reused (allocation {frame} at access {access}) before its \
                                     covering shootdown applied ({} scope(s) outstanding)",
                                    batch.pending.len()
                                ),
                            )
                            .frame(*freed),
                        );
                    }
                }
            }
        }
    }

    for (id, batch) in &batches {
        if batch.pending.is_empty() {
            continue;
        }
        for (freed, freed_at) in &batch.freed {
            if fired.contains(&freed.raw()) {
                continue;
            }
            out.push(
                LintDiag::new(
                    LintCode::ShootdownNeverApplied,
                    format!(
                        "table frame freed at access {freed_at} (batch {id}); its covering \
                         shootdown was still undelivered at pause"
                    ),
                )
                .frame(*freed),
            );
        }
    }

    if log.truncated > 0 {
        out.push(LintDiag::new(
            LintCode::ShootdownNeverApplied,
            format!(
                "shootdown event log truncated ({} events dropped): race analysis is incomplete",
                log.truncated
            ),
        ));
    }
    out
}

/// One VM's recorded shootdown protocol plus the frame span it owns on the
/// shared pool, the input to [`detect_host_shootdown_races`]. Live VMs are
/// viewed directly through [`crate::Machine::shootdown_log`]; torn-down
/// VMs through the log the host harvested at teardown.
#[derive(Debug, Clone, Copy)]
pub struct VmShootdownView<'a> {
    /// Which VM recorded the log.
    pub vm: VmId,
    /// First frame number of the VM's span (frames `[frame_base,
    /// frame_base + frame_span)` belong to this VM).
    pub frame_base: u64,
    /// Length of the VM's frame span.
    pub frame_span: u64,
    /// The VM's recorded shootdown protocol.
    pub log: &'a ShootdownLog,
}

/// Host-scope extension of [`detect_shootdown_races`]: the per-VM
/// happens-before pass over every log (diagnostics tagged with their VM),
/// plus a cross-VM ownership check no single machine can make — a
/// `FrameFreed`/`FrameReused` event naming a frame outside the recording
/// VM's span means one VM's shootdown protocol operated on table memory
/// the host leased to another VM ([`LintCode::CrossVmFrameAlias`]).
///
/// Pure and deterministic; diagnostics come back unsorted (the caller
/// merges them into a [`LintReport`]).
#[must_use]
pub fn detect_host_shootdown_races(views: &[VmShootdownView<'_>]) -> Vec<LintDiag> {
    let mut out = Vec::new();
    for view in views {
        for d in detect_shootdown_races(view.log) {
            out.push(d.vm(view.vm));
        }
        let end = view.frame_base.saturating_add(view.frame_span);
        let mut flagged: HashSet<u64> = HashSet::new();
        for event in &view.log.events {
            let (frame, what) = match event {
                ShootdownEvent::FrameFreed { frame, .. } => (*frame, "freed"),
                ShootdownEvent::FrameReused { frame, .. } => (*frame, "allocated"),
                _ => continue,
            };
            if (view.frame_base..end).contains(&frame.raw()) || !flagged.insert(frame.raw()) {
                continue;
            }
            let owner = views
                .iter()
                .find(|v| {
                    (v.frame_base..v.frame_base.saturating_add(v.frame_span)).contains(&frame.raw())
                })
                .map_or("no VM's span".to_string(), |v| format!("vm {}", v.vm.raw()));
            out.push(
                LintDiag::new(
                    LintCode::CrossVmFrameAlias,
                    format!(
                        "vm {}'s shootdown protocol {what} table frame {frame}, which lies in \
                         {owner}",
                        view.vm.raw()
                    ),
                )
                .vm(view.vm)
                .frame(frame),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(asid: u32, start: u64, len: u64) -> FlushScope {
        FlushScope { asid, start, len }
    }

    fn view(vm: u32) -> VmFrameView {
        VmFrameView {
            vm: VmId::new(vm),
            frame_base: u64::from(vm) * agile_mem::VM_FRAME_SPAN,
            frames_allocated: 100,
            frames_charged: 100,
            lease: 128,
            ballooned: 0,
            pool_surrendered: 0,
            torn_down: false,
        }
    }

    #[test]
    fn clean_host_views_produce_no_diagnostics() {
        let views = [view(0), view(1), view(2)];
        assert!(check_host_frames(&views).is_empty());
    }

    #[test]
    fn overlapping_extents_alias_frames() {
        let mut a = view(0);
        a.frames_allocated = agile_mem::VM_FRAME_SPAN + 5;
        let diags = check_host_frames(&[a, view(1)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::CrossVmFrameAlias);
        assert_eq!(diags[0].vm, Some(VmId::new(0)));
    }

    #[test]
    fn lease_overrun_is_a_cross_vm_alias() {
        let mut a = view(1);
        a.frames_charged = a.lease + 7;
        let diags = check_host_frames(&[view(0), a]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::CrossVmFrameAlias);
        assert_eq!(diags[0].vm, Some(VmId::new(1)));
    }

    #[test]
    fn teardown_leak_and_balloon_loss_are_reported() {
        let mut a = view(0);
        a.torn_down = true;
        a.lease = 9;
        let mut b = view(1);
        b.ballooned = 20;
        b.pool_surrendered = 15;
        let report = LintReport::from_diags(check_host_frames(&[a, b]));
        let codes: Vec<LintCode> = report.diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![LintCode::TeardownFrameLeak, LintCode::BalloonNotReturned]
        );
        let rendered = report.render();
        assert!(rendered.contains("vm=0"), "vm tag rendered: {rendered}");
    }

    #[test]
    fn torn_down_vm_with_zero_lease_is_clean() {
        let mut a = view(2);
        a.torn_down = true;
        a.lease = 0;
        assert!(check_host_frames(&[a]).is_empty());
    }

    #[test]
    fn scope_covering_rules() {
        let full = FlushScope::asid_full(1);
        let range = scope(1, 0x1000, 0x2000);
        assert!(full.covers(&range));
        assert!(full.covers(&full));
        assert!(!range.covers(&full));
        assert!(!scope(2, 0, u64::MAX).covers(&range), "different asid");
        assert!(scope(1, 0x1000, 0x2000).covers(&scope(1, 0x1800, 0x800)));
        assert!(!scope(1, 0x1000, 0x2000).covers(&scope(1, 0x2800, 0x1000)));
    }

    #[test]
    fn dropped_free_reuse_is_a_race() {
        let mut log = ShootdownLog::new();
        log.push(ShootdownEvent::Dropped {
            access: 10,
            batch: 0,
            scope: scope(1, 0x1000, 0x1000),
        });
        log.push(ShootdownEvent::FrameFreed {
            access: 10,
            batch: 0,
            frame: HostFrame::new(7),
        });
        log.push(ShootdownEvent::FrameReused {
            access: 12,
            frame: HostFrame::new(9),
        });
        let diags = detect_shootdown_races(&log);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::MissedShootdownReuse);
        assert_eq!(diags[0].frame, Some(HostFrame::new(7)));
    }

    #[test]
    fn applied_before_reuse_closes_the_window() {
        let mut log = ShootdownLog::new();
        log.push(ShootdownEvent::Dropped {
            access: 10,
            batch: 0,
            scope: scope(1, 0x1000, 0x1000),
        });
        log.push(ShootdownEvent::FrameFreed {
            access: 10,
            batch: 0,
            frame: HostFrame::new(7),
        });
        // A later full-ASID flush (e.g. a heal) subsumes the dropped range.
        log.push(ShootdownEvent::Applied {
            access: 11,
            scope: FlushScope::asid_full(1),
        });
        log.push(ShootdownEvent::FrameReused {
            access: 12,
            frame: HostFrame::new(9),
        });
        assert!(detect_shootdown_races(&log).is_empty());
    }

    #[test]
    fn open_window_without_reuse_is_a_warning() {
        let mut log = ShootdownLog::new();
        log.push(ShootdownEvent::Deferred {
            access: 10,
            batch: 3,
            due: 90,
            scope: scope(1, 0, 0x1000),
        });
        log.push(ShootdownEvent::FrameFreed {
            access: 10,
            batch: 3,
            frame: HostFrame::new(4),
        });
        let diags = detect_shootdown_races(&log);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::ShootdownNeverApplied);
        assert_eq!(diags[0].severity, LintSeverity::Warning);
    }

    #[test]
    fn host_scope_tags_per_vm_races_and_catches_cross_vm_frames() {
        let span = agile_mem::VM_FRAME_SPAN;
        // vm 0: an in-span race (dropped flush, free, reuse) — must come
        // back tagged vm=0. vm 1: protocol clean, but its log frees a
        // frame inside vm 0's span — the cross-VM check must flag it.
        let mut log0 = ShootdownLog::new();
        log0.push(ShootdownEvent::Dropped {
            access: 10,
            batch: 0,
            scope: scope(1, 0x1000, 0x1000),
        });
        log0.push(ShootdownEvent::FrameFreed {
            access: 10,
            batch: 0,
            frame: HostFrame::new(7),
        });
        log0.push(ShootdownEvent::FrameReused {
            access: 12,
            frame: HostFrame::new(9),
        });
        let mut log1 = ShootdownLog::new();
        log1.push(ShootdownEvent::Requested {
            access: 20,
            batch: 0,
            scope: scope(2, 0, 0x1000),
        });
        log1.push(ShootdownEvent::Applied {
            access: 20,
            scope: scope(2, 0, 0x1000),
        });
        log1.push(ShootdownEvent::FrameFreed {
            access: 21,
            batch: 1,
            frame: HostFrame::new(7), // vm 0's span
        });
        let views = [
            VmShootdownView {
                vm: VmId::new(0),
                frame_base: 0,
                frame_span: span,
                log: &log0,
            },
            VmShootdownView {
                vm: VmId::new(1),
                frame_base: span,
                frame_span: span,
                log: &log1,
            },
        ];
        let report = LintReport::from_diags(detect_host_shootdown_races(&views));
        assert_eq!(report.count(LintCode::MissedShootdownReuse), 1);
        assert_eq!(report.count(LintCode::CrossVmFrameAlias), 1);
        let race = report
            .diags
            .iter()
            .find(|d| d.code == LintCode::MissedShootdownReuse)
            .expect("per-vm race survives at host scope");
        assert_eq!(race.vm, Some(VmId::new(0)));
        let alias = report
            .diags
            .iter()
            .find(|d| d.code == LintCode::CrossVmFrameAlias)
            .expect("out-of-span frame is a cross-vm alias");
        assert_eq!(alias.vm, Some(VmId::new(1)));
        assert_eq!(alias.frame, Some(HostFrame::new(7)));
        assert!(alias.detail.contains("vm 0"), "names the owner: {alias}");
    }

    #[test]
    fn host_scope_is_quiet_on_clean_in_span_logs() {
        let span = agile_mem::VM_FRAME_SPAN;
        let mut log = ShootdownLog::new();
        log.push(ShootdownEvent::Requested {
            access: 5,
            batch: 0,
            scope: scope(1, 0, 0x1000),
        });
        log.push(ShootdownEvent::Applied {
            access: 5,
            scope: scope(1, 0, 0x1000),
        });
        log.push(ShootdownEvent::FrameFreed {
            access: 5,
            batch: 0,
            frame: HostFrame::new(span + 3),
        });
        log.push(ShootdownEvent::FrameReused {
            access: 6,
            frame: HostFrame::new(span + 4),
        });
        let views = [VmShootdownView {
            vm: VmId::new(1),
            frame_base: span,
            frame_span: span,
            log: &log,
        }];
        assert!(detect_host_shootdown_races(&views).is_empty());
    }

    #[test]
    fn truncation_is_always_visible() {
        let mut log = ShootdownLog::new();
        for _ in 0..MAX_SHOOTDOWN_EVENTS + 5 {
            log.push(ShootdownEvent::FrameReused {
                access: 1,
                frame: HostFrame::new(1),
            });
        }
        assert_eq!(log.truncated, 5);
        let diags = detect_shootdown_races(&log);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].detail.contains("truncated"));
    }

    #[test]
    fn report_orders_and_renders_deterministically() {
        let a = LintDiag::new(LintCode::OrphanFrame, "z".into()).frame(HostFrame::new(9));
        let b = LintDiag::new(LintCode::OrphanFrame, "a".into()).frame(HostFrame::new(2));
        let r1 = LintReport::from_diags(vec![a.clone(), b.clone()]);
        let r2 = LintReport::from_diags(vec![b, a]);
        assert_eq!(r1, r2);
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.to_json().render(), r2.to_json().render());
        assert!(r1.has_errors());
        assert_eq!(r1.count(LintCode::OrphanFrame), 2);
    }

    #[test]
    fn every_code_has_distinct_label_and_severity() {
        let labels: HashSet<&str> = LintCode::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), LintCode::ALL.len());
        assert_eq!(
            LintCode::ShootdownNeverApplied.severity(),
            LintSeverity::Warning
        );
        assert_eq!(LintCode::OrphanFrame.severity(), LintSeverity::Error);
    }
}
