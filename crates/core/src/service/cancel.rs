//! Cooperative cancellation: the stop flag a running [`crate::Machine`]
//! checks at tick boundaries.
//!
//! A [`CancelToken`] is the one communication channel between the control
//! plane (the job service, a timeout, a client pressing ^C) and a
//! simulation in flight. The machine polls [`CancelToken::check`] at every
//! workload tick boundary — the natural quiescent point where all pending
//! shootdowns are drained — and stops cooperatively, returning the
//! statistics accumulated so far. Nothing is ever detached or killed: a
//! cancelled run unwinds through the normal return path within one tick.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const TIMED_OUT: u8 = 2;

/// Why a run was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// A client (or the service) cancelled the job explicitly.
    Cancelled,
    /// The job's cooperative deadline passed.
    TimedOut,
}

impl StopCause {
    /// Stable identifier used in logs and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StopCause::Cancelled => "cancelled",
            StopCause::TimedOut => "timed-out",
        }
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    /// Latched stop state (`LIVE`/`CANCELLED`/`TIMED_OUT`). Once set to a
    /// terminal value it never changes, so the cause a machine observed at
    /// its stop point is the cause everyone else sees afterwards.
    state: AtomicU8,
    /// Cooperative deadline; checked (and latched into `state`) by
    /// [`CancelToken::check`].
    deadline: Mutex<Option<Instant>>,
}

/// A shared, cloneable stop flag with an optional deadline.
///
/// Cancellation is *cooperative*: calling [`CancelToken::cancel`] (or the
/// deadline passing) only marks the token; the running machine observes it
/// at its next tick boundary and stops there. The token latches the first
/// cause — a cancel racing a timeout resolves deterministically to
/// whichever marked the token first.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A live token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Marks the token cancelled. Idempotent; a no-op if the deadline
    /// already fired.
    pub fn cancel(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Arms (or re-arms) the cooperative deadline.
    pub fn set_deadline(&self, at: Instant) {
        *self.inner.deadline.lock().expect("deadline lock") = Some(at);
    }

    /// The stop cause, if any — checking (and latching) the deadline as a
    /// side effect. This is the call sites in the machine's event loop use.
    #[must_use]
    pub fn check(&self) -> Option<StopCause> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => return Some(StopCause::Cancelled),
            TIMED_OUT => return Some(StopCause::TimedOut),
            _ => {}
        }
        let due = {
            let deadline = self.inner.deadline.lock().expect("deadline lock");
            matches!(*deadline, Some(at) if Instant::now() >= at)
        };
        if due {
            let _ = self.inner.state.compare_exchange(
                LIVE,
                TIMED_OUT,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            // Re-read: a racing cancel() may have latched first; report
            // whatever won.
            return match self.inner.state.load(Ordering::Acquire) {
                CANCELLED => Some(StopCause::Cancelled),
                _ => Some(StopCause::TimedOut),
            };
        }
        None
    }

    /// True when the token has latched a stop cause (does not arm the
    /// deadline check).
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_latches_cancel() {
        let t = CancelToken::new();
        assert_eq!(t.check(), None);
        assert!(!t.is_stopped());
        t.cancel();
        assert_eq!(t.check(), Some(StopCause::Cancelled));
        assert!(t.is_stopped());
        // Latched: a later deadline cannot repaint the cause.
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Some(StopCause::Cancelled));
    }

    #[test]
    fn deadline_latches_timeout() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Some(StopCause::TimedOut));
        // Latched: cancel after the fact does not repaint.
        t.cancel();
        assert_eq!(t.check(), Some(StopCause::TimedOut));
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.check(), None);
        assert!(!t.is_stopped());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert_eq!(u.check(), Some(StopCause::Cancelled));
    }
}
