//! Simulation-as-a-service: an async, cancellable, work-stealing run
//! engine.
//!
//! The [`crate::runner`] module gives one client one batch: build a
//! [`RunRequest`] matrix, fan it across threads, block until everything
//! finishes. This module rebuilds that engine as a **long-running
//! service** with incremental submission and streamed results:
//!
//! * [`Service::submit`] enqueues one request and returns a [`JobId`]
//!   immediately — clients submit while earlier jobs are still running.
//! * A fleet of long-lived workers pulls jobs from **sharded
//!   work-stealing queues**: each worker owns a shard (submissions are
//!   dealt round-robin) and steals from the back of its siblings' queues
//!   when its own runs dry, so a skewed matrix cannot strand capacity.
//! * [`Service::poll`] is the non-blocking status probe, [`Service::wait`]
//!   blocks for one job, and [`Service::next_result`] streams completions
//!   in finish order — the front end for serving artifacts as they land.
//! * [`Service::cancel`] stops a job **cooperatively**: a queued job is
//!   retired on the spot, a running one has its [`CancelToken`] marked and
//!   stops at the machine's next tick boundary with its partial statistics
//!   intact. The same token carries the per-job deadline, so a timed-out
//!   run surfaces as [`RunOutcome::TimedOut`] with partial stats instead
//!   of being abandoned on a detached thread (no thread ever outlives
//!   [`Service::shutdown`]).
//! * **Crash recovery**: with [`PlanOptions::checkpoint_interval`] set,
//!   every running machine checkpoints into its job's
//!   [`CheckpointSlot`] at tick
//!   boundaries. When a worker dies mid-job (the chaos layer's
//!   [`FaultPlan::kill_worker_midrun`](crate::chaos::FaultPlan) fault),
//!   the service detects the orphan, re-queues it with its last
//!   checkpoint, and a surviving worker restores the machine and replays
//!   only the remaining workload events. The resumed artifact is
//!   **byte-identical** to an uninterrupted run's; the death and resume
//!   are recorded service-side ([`Service::drain_degradations`],
//!   [`ServiceMetrics`]) and never grafted into the artifact.
//!
//! **Determinism contract:** an artifact is a pure function of its
//! request. Seeds are fixed at submission (the [`PlanOptions::seed_base`]
//! stream derives from the job id), never from scheduling, so the same
//! job file yields byte-identical per-request artifacts at any shard
//! count. The service adds wall-clock *metrics* ([`ServiceMetrics`]) on
//! the side; they never touch artifact bytes.
//!
//! [`crate::runner::RunPlan`] is now a thin batch façade over this
//! engine: it submits its matrix, waits in request order, and shuts the
//! service down.

mod cancel;

pub use cancel::{CancelToken, StopCause};

use crate::chaos::{DegradationEvent, DegradationKind};
use crate::runner::{panic_message, RecoveryControls, RunOutcome, RunRequest};
use crate::snapshot::{Checkpoint, CheckpointSlot, WorkerKill};
use agile_types::SplitMix64;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution options shared by the batch façade
/// ([`crate::runner::RunPlan`]) and the service — one struct instead of a
/// `with_*` builder per knob.
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Worker (= shard) count; `0` means one worker per available core.
    /// Results are byte-identical at any value.
    pub threads: usize,
    /// Cooperative per-job wall-clock limit. A job past its deadline stops
    /// at the machine's next tick boundary and surfaces as
    /// [`RunOutcome::TimedOut`] with its partial statistics.
    pub timeout: Option<Duration>,
    /// Bounded retry count for panicking jobs (a retry re-runs the whole
    /// request; exhausting the budget yields [`RunOutcome::Skipped`]).
    pub retries: u32,
    /// Deterministic seed stream: job *i* (without an explicit seed
    /// override) runs with `SplitMix64::derive(base, i)`, independent of
    /// shard count and execution order.
    pub seed_base: Option<u64>,
    /// Checkpoint the running machine into its job's slot every this-many
    /// workload ticks (`None` = no checkpointing). Powers crash recovery:
    /// a job orphaned by a worker death resumes from its last checkpoint
    /// on another worker with a byte-identical artifact.
    pub checkpoint_interval: Option<u64>,
}

impl PlanOptions {
    /// Options with `threads` workers and everything else default.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        PlanOptions {
            threads,
            ..PlanOptions::default()
        }
    }

    /// Returns the options with checkpointing every `ticks` workload
    /// ticks (clamped to ≥ 1).
    #[must_use]
    pub fn checkpoint_every(mut self, ticks: u64) -> Self {
        self.checkpoint_interval = Some(ticks.max(1));
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            self.threads
        }
    }
}

/// Handle to one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// The job's position in submission order (job 0 was submitted first).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The handle for submission-order position `index` — the inverse of
    /// [`JobId::index`], for clients that persist job ids across a
    /// round trip (e.g. a job file). [`Service::poll`] answers `None` for
    /// an id the service never issued.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        JobId(index as u64)
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in a shard queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a full artifact.
    Completed,
    /// Stopped cooperatively at its deadline; partial artifact available.
    TimedOut,
    /// Cancelled by a client (partial artifact when it was mid-flight).
    Cancelled,
    /// Panicked past its retry budget; no artifact.
    Skipped,
}

impl JobState {
    /// Stable identifier used in logs and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::TimedOut => "timed-out",
            JobState::Cancelled => "cancelled",
            JobState::Skipped => "skipped",
        }
    }
}

/// Snapshot answer of [`Service::poll`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job asked about.
    pub id: JobId,
    /// Its request label.
    pub label: String,
    /// Lifecycle state at the time of the poll.
    pub state: JobState,
}

/// Aggregate queue/latency/steal counters, snapshot via
/// [`Service::metrics`]. Wall-clock values are provenance, never part of
/// any artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs accepted by [`Service::submit`].
    pub submitted: u64,
    /// Jobs that finished with a full artifact.
    pub completed: u64,
    /// Jobs stopped cooperatively at their deadline.
    pub timed_out: u64,
    /// Jobs cancelled by clients (queued or mid-flight).
    pub cancelled: u64,
    /// Jobs dropped after exhausting their retry budget.
    pub skipped: u64,
    /// Jobs a worker executed from a shard it does not own.
    pub steals: u64,
    /// Deepest any single shard queue ever got.
    pub max_queue_depth: u64,
    /// Total nanoseconds jobs spent queued before a worker picked them up.
    pub queue_nanos: u64,
    /// Total nanoseconds jobs spent executing.
    pub run_nanos: u64,
    /// Checkpoints stored by running jobs (counted when the job reaches a
    /// terminal state).
    pub checkpoints: u64,
    /// Orphaned jobs resumed from a checkpoint on another worker.
    pub resumes: u64,
    /// Worker deaths detected mid-job; each orphaned job is re-queued
    /// (from its checkpoint when one exists, from scratch otherwise).
    pub orphans: u64,
}

impl ServiceMetrics {
    /// Jobs in a terminal state.
    #[must_use]
    pub fn finished(&self) -> u64 {
        self.completed + self.timed_out + self.cancelled + self.skipped
    }

    /// Mean time-in-queue per finished job.
    #[must_use]
    pub fn mean_queue_latency(&self) -> Duration {
        Duration::from_nanos(self.queue_nanos.checked_div(self.finished()).unwrap_or(0))
    }

    /// Mean execution time per finished job.
    #[must_use]
    pub fn mean_run_latency(&self) -> Duration {
        Duration::from_nanos(self.run_nanos.checked_div(self.finished()).unwrap_or(0))
    }
}

#[derive(Default)]
struct MetricCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    skipped: AtomicU64,
    steals: AtomicU64,
    max_queue_depth: AtomicU64,
    queue_nanos: AtomicU64,
    run_nanos: AtomicU64,
    checkpoints: AtomicU64,
    resumes: AtomicU64,
    orphans: AtomicU64,
}

impl MetricCells {
    fn snapshot(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            queue_nanos: self.queue_nanos.load(Ordering::Relaxed),
            run_nanos: self.run_nanos.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            orphans: self.orphans.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
}

struct Job {
    request: RunRequest,
    token: CancelToken,
    phase: Phase,
    outcome: Option<RunOutcome>,
    enqueued: Instant,
    /// Checkpoint mailbox shared with the machine executing this job.
    slot: CheckpointSlot,
    /// Checkpoint to resume from after a worker death.
    resume: Option<Checkpoint>,
    /// Runner-level degradation events carried across a worker death (so
    /// a pre-kill panic's record survives the re-queue).
    events: Vec<DegradationEvent>,
    /// The job's kill trigger already fired; it is disarmed on re-run.
    killed: bool,
}

struct State {
    jobs: Vec<Job>,
    /// One deque of job indices per worker; submissions are dealt
    /// round-robin, owners pop the front, thieves pop the back.
    shards: Vec<VecDeque<usize>>,
    next_shard: usize,
    /// Jobs not yet in a terminal state.
    live: usize,
    /// Terminal jobs not yet handed out by [`Service::next_result`].
    finished: VecDeque<usize>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Workers sleep here when every shard is empty.
    work_cv: Condvar,
    /// Waiters ([`Service::wait`]/[`Service::next_result`]) sleep here.
    done_cv: Condvar,
    metrics: MetricCells,
    timeout: Option<Duration>,
    retries: u32,
    seed_base: Option<u64>,
    checkpoint_interval: Option<u64>,
    /// Service-side degradation log (worker deaths, checkpoint resumes).
    /// Provenance only — never grafted into artifacts.
    degradations: Mutex<Vec<DegradationEvent>>,
    /// Replacement workers spawned after a death; joined at shutdown.
    replacements: Mutex<Vec<JoinHandle<()>>>,
}

/// The long-running job engine. See the [module docs](self) for the
/// architecture and determinism contract.
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("metrics", &self.inner.metrics.snapshot())
            .finish_non_exhaustive()
    }
}

/// Installs (once, wrapping any existing hook) a panic hook that
/// silences the intentional [`WorkerKill`] unwind: chaos kills are
/// simulated worker crashes, not bugs, and their backtraces would drown
/// real panic output. Every other panic still reaches the previous hook.
fn silence_worker_kills() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<WorkerKill>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Service {
    /// Starts the worker fleet: one long-lived worker (and queue shard)
    /// per `opts.threads` (0 = one per core). Timeout, retries, and the
    /// seed stream come from `opts` too.
    #[must_use]
    pub fn new(opts: PlanOptions) -> Self {
        silence_worker_kills();
        let shards = opts.resolved_threads().max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: Vec::new(),
                shards: (0..shards).map(|_| VecDeque::new()).collect(),
                next_shard: 0,
                live: 0,
                finished: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics: MetricCells::default(),
            timeout: opts.timeout,
            retries: opts.retries,
            seed_base: opts.seed_base,
            checkpoint_interval: opts.checkpoint_interval,
            degradations: Mutex::new(Vec::new()),
            replacements: Mutex::new(Vec::new()),
        });
        let workers = (0..shards)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("agile-svc-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.inner.state.lock().expect("service state").shards.len()
    }

    /// Enqueues one request and returns its job handle immediately.
    ///
    /// When [`PlanOptions::seed_base`] is set and the request carries no
    /// explicit seed override, the job's seed is fixed **here** — derived
    /// from the job id — so results never depend on which worker runs it.
    ///
    /// # Panics
    ///
    /// Panics if the service has been shut down.
    pub fn submit(&self, request: RunRequest) -> JobId {
        let mut request = request;
        let mut st = self.inner.state.lock().expect("service state");
        assert!(!st.shutdown, "submit on a shut-down service");
        let id = st.jobs.len();
        if request.seed.is_none() {
            if let Some(base) = self.inner.seed_base {
                request.seed = Some(SplitMix64::derive(base, id as u64));
            }
        }
        st.jobs.push(Job {
            request,
            token: CancelToken::new(),
            phase: Phase::Queued,
            outcome: None,
            enqueued: Instant::now(),
            slot: CheckpointSlot::new(),
            resume: None,
            events: Vec::new(),
            killed: false,
        });
        let shard = st.next_shard;
        st.next_shard = (st.next_shard + 1) % st.shards.len();
        st.shards[shard].push_back(id);
        st.live += 1;
        let depth = st.shards[shard].len() as u64;
        self.inner
            .metrics
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.inner.work_cv.notify_one();
        JobId(id as u64)
    }

    /// Submits a whole batch, returning the handles in request order.
    pub fn submit_all(&self, requests: impl IntoIterator<Item = RunRequest>) -> Vec<JobId> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Non-blocking status probe; `None` for an unknown id.
    #[must_use]
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().expect("service state");
        let job = st.jobs.get(id.index())?;
        let state = match job.phase {
            Phase::Queued => JobState::Queued,
            Phase::Running => JobState::Running,
            Phase::Done => match job.outcome.as_ref().expect("done job has outcome") {
                RunOutcome::Completed(_) => JobState::Completed,
                RunOutcome::TimedOut { .. } => JobState::TimedOut,
                RunOutcome::Cancelled { .. } => JobState::Cancelled,
                RunOutcome::Skipped { .. } => JobState::Skipped,
            },
        };
        Some(JobStatus {
            id,
            label: job.request.label.clone(),
            state,
        })
    }

    /// Blocks until `id` reaches a terminal state and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics on an id this service never issued.
    #[must_use]
    pub fn wait(&self, id: JobId) -> RunOutcome {
        let mut st = self.inner.state.lock().expect("service state");
        assert!(id.index() < st.jobs.len(), "wait on unknown {id}");
        loop {
            if let Some(outcome) = st.jobs[id.index()].outcome.as_ref() {
                return outcome.clone();
            }
            st = self.inner.done_cv.wait(st).expect("service state");
        }
    }

    /// Blocks for the next unclaimed completion, in **finish order** —
    /// the streaming front end. Returns `None` once every submitted job's
    /// outcome has been claimed and nothing is in flight.
    #[must_use]
    pub fn next_result(&self) -> Option<(JobId, RunOutcome)> {
        let mut st = self.inner.state.lock().expect("service state");
        loop {
            if let Some(id) = st.finished.pop_front() {
                let outcome = st.jobs[id].outcome.clone().expect("finished job");
                return Some((JobId(id as u64), outcome));
            }
            if st.live == 0 {
                return None;
            }
            st = self.inner.done_cv.wait(st).expect("service state");
        }
    }

    /// Requests cooperative cancellation of `id`. A queued job is retired
    /// immediately (`RunOutcome::Cancelled` with no partial artifact); a
    /// running job's token is marked and it stops at the machine's next
    /// tick boundary with partial stats. Returns `false` when the job was
    /// already terminal (or unknown) — cancellation lost the race.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().expect("service state");
        let Some(job) = st.jobs.get_mut(id.index()) else {
            return false;
        };
        match job.phase {
            Phase::Done => false,
            Phase::Running => {
                job.token.cancel();
                true
            }
            Phase::Queued => {
                job.token.cancel();
                let outcome = RunOutcome::Cancelled {
                    label: job.request.label.clone(),
                    index: id.index(),
                    partial: None,
                };
                self.finish_locked(&mut st, id.index(), outcome);
                drop(st);
                self.inner.done_cv.notify_all();
                true
            }
        }
    }

    /// Current metric counters.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot()
    }

    /// Drains the service-side degradation log: one
    /// [`DegradationKind::ResumedFromCheckpoint`] event per worker death,
    /// saying which job was orphaned and where it resumed. These events
    /// are service provenance — they are **never** grafted into
    /// artifacts, which stay byte-identical to an undisturbed run's.
    #[must_use]
    pub fn drain_degradations(&self) -> Vec<DegradationEvent> {
        std::mem::take(
            &mut *self
                .inner
                .degradations
                .lock()
                .expect("service degradations"),
        )
    }

    /// Drains the queues and stops the fleet: already-submitted jobs run
    /// to a terminal state, further submissions panic, and every worker
    /// thread is joined before this returns (the no-detached-threads
    /// guarantee). Idempotent. Returns the final metrics.
    pub fn shutdown(&self) -> ServiceMetrics {
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker handles"));
        for handle in workers {
            handle.join().expect("service worker never panics");
        }
        // Replacement workers (spawned after a death) can themselves die
        // and spawn further replacements while we join, so drain until the
        // list stays empty. Kills are finite — at most one per job — so
        // this terminates.
        loop {
            let replacements =
                std::mem::take(&mut *self.inner.replacements.lock().expect("replacement handles"));
            if replacements.is_empty() {
                break;
            }
            for handle in replacements {
                handle.join().expect("service worker never panics");
            }
        }
        self.inner.metrics.snapshot()
    }

    /// Marks a job terminal under the state lock (does not notify).
    fn finish_locked(&self, st: &mut State, id: usize, outcome: RunOutcome) {
        finish_job(&self.inner, st, id, outcome);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Marks job `id` terminal: stores the outcome, bumps the right counter,
/// and queues it for [`Service::next_result`]. Caller holds the lock and
/// notifies `done_cv` afterwards.
fn finish_job(inner: &Inner, st: &mut State, id: usize, outcome: RunOutcome) {
    let counter = match &outcome {
        RunOutcome::Completed(_) => &inner.metrics.completed,
        RunOutcome::TimedOut { .. } => &inner.metrics.timed_out,
        RunOutcome::Cancelled { .. } => &inner.metrics.cancelled,
        RunOutcome::Skipped { .. } => &inner.metrics.skipped,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let job = &mut st.jobs[id];
    debug_assert!(job.outcome.is_none(), "job finished twice");
    job.phase = Phase::Done;
    job.outcome = Some(outcome);
    st.live -= 1;
    st.finished.push_back(id);
}

/// Claims the next runnable job for worker `w`: front of its own shard
/// first, then — stealing — the back of the fullest sibling shard.
/// Already-retired (queue-cancelled) jobs are skipped. Returns
/// `(job, stolen)`.
fn claim_job(st: &mut State, w: usize) -> Option<(usize, bool)> {
    while let Some(id) = st.shards[w].pop_front() {
        if st.jobs[id].outcome.is_none() {
            return Some((id, false));
        }
    }
    loop {
        let victim = st
            .shards
            .iter()
            .enumerate()
            .filter(|(s, q)| *s != w && !q.is_empty())
            .max_by_key(|(_, q)| q.len())
            .map(|(s, _)| s)?;
        while let Some(id) = st.shards[victim].pop_back() {
            if st.jobs[id].outcome.is_none() {
                return Some((id, true));
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, w: usize) {
    loop {
        let claimed = {
            let mut st = inner.state.lock().expect("service state");
            loop {
                if let Some(claim) = claim_job(&mut st, w) {
                    let (id, stolen) = claim;
                    let job = &mut st.jobs[id];
                    job.phase = Phase::Running;
                    let queue_nanos = saturating_nanos(job.enqueued.elapsed());
                    inner
                        .metrics
                        .queue_nanos
                        .fetch_add(queue_nanos, Ordering::Relaxed);
                    if stolen {
                        inner.metrics.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let recovery = RecoveryControls {
                        checkpoint_interval: inner.checkpoint_interval,
                        slot: job.slot.clone(),
                        // The kill trigger fires at most once per job: a
                        // resumed (or restarted) life runs it disarmed.
                        arm_kill: !job.killed,
                        resume: job.resume.clone(),
                    };
                    let events = std::mem::take(&mut job.events);
                    break Some((id, job.request.clone(), job.token.clone(), recovery, events));
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work_cv.wait(st).expect("service state");
            }
        };
        let Some((id, request, token, recovery, events)) = claimed else {
            return;
        };
        let started = Instant::now();
        if let Some(limit) = inner.timeout {
            token.set_deadline(started + limit);
        }
        let run = run_job(&request, &token, id, inner.retries, &recovery, events);
        inner
            .metrics
            .run_nanos
            .fetch_add(saturating_nanos(started.elapsed()), Ordering::Relaxed);
        match run {
            JobRun::Done(outcome) => {
                inner
                    .metrics
                    .checkpoints
                    .fetch_add(recovery.slot.stores(), Ordering::Relaxed);
                {
                    let mut st = inner.state.lock().expect("service state");
                    finish_job(inner, &mut st, id, outcome);
                }
                inner.done_cv.notify_all();
            }
            JobRun::Killed(events) => {
                orphan_job(inner, w, id, &request.label, events);
                // This worker is dead. Spawn its replacement on the same
                // shard, then let the thread exit.
                let replacement = {
                    let inner = Arc::clone(inner);
                    std::thread::Builder::new()
                        .name(format!("agile-svc-{w}r"))
                        .spawn(move || worker_loop(&inner, w))
                        .expect("spawn replacement service worker")
                };
                inner
                    .replacements
                    .lock()
                    .expect("replacement handles")
                    .push(replacement);
                return;
            }
        }
    }
}

/// Handles a worker death: takes the orphaned job's last checkpoint,
/// re-queues it on the next shard over, logs the resume service-side, and
/// bumps the orphan/resume metrics. The job's carried runner-level events
/// survive in the job record.
fn orphan_job(inner: &Arc<Inner>, w: usize, id: usize, label: &str, events: Vec<DegradationEvent>) {
    inner.metrics.orphans.fetch_add(1, Ordering::Relaxed);
    let mut st = inner.state.lock().expect("service state");
    let resume = st.jobs[id].slot.take();
    let detail = match &resume {
        Some(cp) => {
            inner.metrics.resumes.fetch_add(1, Ordering::Relaxed);
            format!(
                "job-{id} ({label}): worker {w} died mid-run; resuming from the checkpoint \
                 at workload event {} on another worker",
                cp.events_consumed
            )
        }
        None => format!(
            "job-{id} ({label}): worker {w} died mid-run with no checkpoint stored; \
             restarting from scratch on another worker"
        ),
    };
    let job = &mut st.jobs[id];
    job.phase = Phase::Queued;
    job.killed = true;
    job.resume = resume;
    job.events = events;
    job.enqueued = Instant::now();
    let shard = (w + 1) % st.shards.len();
    st.shards[shard].push_back(id);
    drop(st);
    {
        let mut log = inner.degradations.lock().expect("service degradations");
        let seq = log.len() as u64;
        log.push(DegradationEvent {
            seq,
            access: 0,
            kind: DegradationKind::ResumedFromCheckpoint,
            gva: None,
            detail,
        });
    }
    inner.work_cv.notify_all();
}

fn saturating_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// What one [`run_job`] call did with its job.
enum JobRun {
    /// The job reached a terminal outcome on this worker.
    Done(RunOutcome),
    /// The chaos layer killed this worker mid-attempt; the job is an
    /// orphan. Carries the runner-level events accumulated so far so a
    /// pre-kill panic's record survives the re-queue.
    Killed(Vec<DegradationEvent>),
}

/// Runs one job to a terminal outcome on the calling worker: panics are
/// caught and retried up to `retries` times; a cooperative stop (cancel
/// or deadline) ends the job with its partial artifact. The deadline
/// spans the whole job, retries included. A [`WorkerKill`] unwind is
/// *not* a retryable panic — it means this worker died, and the job is
/// handed back as an orphan.
fn run_job(
    request: &RunRequest,
    token: &CancelToken,
    index: usize,
    retries: u32,
    recovery: &RecoveryControls,
    mut events: Vec<DegradationEvent>,
) -> JobRun {
    fn note(events: &mut Vec<DegradationEvent>, kind: DegradationKind, detail: String) {
        events.push(DegradationEvent {
            seq: events.len() as u64,
            access: 0,
            kind,
            gva: None,
            detail,
        });
    }
    /// Appends runner-level events after the machine's, renumbered so the
    /// combined log stays monotonic.
    fn graft(
        artifact: &mut crate::runner::RunArtifact,
        events: Vec<DegradationEvent>,
        tail: Option<(DegradationKind, String)>,
    ) {
        let mut events = events;
        if let Some((kind, detail)) = tail {
            note(&mut events, kind, detail);
        }
        let base = artifact.degradation.len() as u64;
        for (k, mut e) in events.into_iter().enumerate() {
            e.seq = base + k as u64;
            e.access = artifact.stats.accesses;
            artifact.degradation.push(e);
        }
    }

    for attempt in 0..=retries {
        // A cancel that lands between attempts still stops the job.
        if let Some(StopCause::Cancelled) = token.check() {
            return JobRun::Done(RunOutcome::Cancelled {
                label: request.label.clone(),
                index,
                partial: None,
            });
        }
        match catch_unwind(AssertUnwindSafe(|| {
            request.run_with_recovery(token, recovery)
        })) {
            Ok((mut artifact, None)) => {
                graft(&mut artifact, events, None);
                return JobRun::Done(RunOutcome::Completed(Box::new(artifact)));
            }
            Ok((mut artifact, Some(StopCause::TimedOut))) => {
                let accesses = artifact.stats.accesses;
                graft(
                    &mut artifact,
                    events,
                    Some((
                        DegradationKind::Timeout,
                        format!(
                            "deadline passed; run stopped cooperatively at a tick boundary \
                             after {accesses} measured accesses (partial stats retained)"
                        ),
                    )),
                );
                return JobRun::Done(RunOutcome::TimedOut {
                    label: request.label.clone(),
                    index,
                    partial: Box::new(artifact),
                });
            }
            Ok((mut artifact, Some(StopCause::Cancelled))) => {
                let accesses = artifact.stats.accesses;
                graft(
                    &mut artifact,
                    events,
                    Some((
                        DegradationKind::Cancelled,
                        format!(
                            "cancelled; run stopped cooperatively at a tick boundary \
                             after {accesses} measured accesses (partial stats retained)"
                        ),
                    )),
                );
                return JobRun::Done(RunOutcome::Cancelled {
                    label: request.label.clone(),
                    index,
                    partial: Some(Box::new(artifact)),
                });
            }
            Err(payload) => {
                if payload.downcast_ref::<WorkerKill>().is_some() {
                    return JobRun::Killed(events);
                }
                note(
                    &mut events,
                    DegradationKind::RunnerPanic,
                    format!("attempt {attempt} panicked: {}", panic_message(payload)),
                );
                if attempt < retries {
                    note(
                        &mut events,
                        DegradationKind::RunnerRetry,
                        format!("retrying (attempt {} of {})", attempt + 2, retries + 1),
                    );
                }
            }
        }
    }
    JobRun::Done(RunOutcome::Skipped {
        label: request.label.clone(),
        index,
        events,
    })
}
