//! Run statistics and the paper's performance model (Table IV).

use agile_guest::OsStats;
use agile_tlb::TlbStats;
use agile_types::{CodecError, Dec, Enc, Persist};
use agile_vmm::{VmmCounters, VmtrapStats};
use agile_walk::{WalkKind, WalkStats};

/// The per-access hot counters the inner access loop bumps on every data
/// access, grouped structure-of-arrays style into one contiguous block
/// (a single cache line) instead of four fields scattered across the
/// machine struct between cold configuration and bookkeeping state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCounters {
    /// Data accesses executed.
    pub accesses: u64,
    /// Simulated walk cycles charged.
    pub walk_cycles: u64,
    /// Hardware A/D-bit update walks.
    pub ad_walks: u64,
    /// TLB miss total at the last interval tick (the agile switching
    /// policy's MPKI input).
    pub misses_at_last_tick: u64,
}

impl Persist for HotCounters {
    fn save(&self, e: &mut Enc) {
        e.u64(self.accesses);
        e.u64(self.walk_cycles);
        e.u64(self.ad_walks);
        e.u64(self.misses_at_last_tick);
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(HotCounters {
            accesses: d.u64()?,
            walk_cycles: d.u64()?,
            ad_walks: d.u64()?,
            misses_at_last_tick: d.u64()?,
        })
    }
}

/// Completed-walk histogram by [`WalkKind`] — the classification behind
/// Table VI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    counts: [u64; 7],
    refs: [u64; 7],
}

impl KindCounts {
    fn index(kind: WalkKind) -> usize {
        match kind {
            WalkKind::Native => 0,
            WalkKind::FullShadow => 1,
            WalkKind::Switched { nested_levels } => 1 + nested_levels.clamp(1, 4) as usize,
            WalkKind::FullNested => 6,
        }
    }

    /// Table VI column order: Shadow, L4, L3, L2, L1, Nested.
    pub const TABLE6_ORDER: [WalkKind; 6] = [
        WalkKind::FullShadow,
        WalkKind::Switched { nested_levels: 1 },
        WalkKind::Switched { nested_levels: 2 },
        WalkKind::Switched { nested_levels: 3 },
        WalkKind::Switched { nested_levels: 4 },
        WalkKind::FullNested,
    ];

    /// Counters accumulated since the `earlier` snapshot.
    #[must_use]
    pub fn since(&self, earlier: &KindCounts) -> KindCounts {
        let mut out = *self;
        for i in 0..out.counts.len() {
            out.counts[i] -= earlier.counts[i];
            out.refs[i] -= earlier.refs[i];
        }
        out
    }

    /// Records one completed walk of `kind` performing `refs` references.
    pub fn record(&mut self, kind: WalkKind, refs: u32) {
        let i = Self::index(kind);
        self.counts[i] += 1;
        self.refs[i] += u64::from(refs);
    }

    /// Number of completed walks of `kind`.
    #[must_use]
    pub fn count(&self, kind: WalkKind) -> u64 {
        self.counts[Self::index(kind)]
    }

    /// Memory references performed by completed walks of `kind`.
    #[must_use]
    pub fn refs(&self, kind: WalkKind) -> u64 {
        self.refs[Self::index(kind)]
    }

    /// All completed walks.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of walks served as `kind` (0 when no walks ran).
    #[must_use]
    pub fn fraction(&self, kind: WalkKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }

    /// Mean memory references per walk across every kind.
    #[must_use]
    pub fn avg_refs(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.refs.iter().sum::<u64>() as f64 / total as f64
        }
    }
}

impl Persist for KindCounts {
    fn save(&self, e: &mut Enc) {
        for c in self.counts {
            e.u64(c);
        }
        for r in self.refs {
            e.u64(r);
        }
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        let mut out = KindCounts::default();
        for c in &mut out.counts {
            *c = d.u64()?;
        }
        for r in &mut out.refs {
            *r = d.u64()?;
        }
        Ok(out)
    }
}

/// The execution-time overhead split the paper's Figure 5 plots, computed
/// with the Table IV linear model: overheads are normalized to the ideal
/// execution time (`E_ideal` = work cycles with free translation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// Page-walk overhead as a fraction of ideal time (bottom bar
    /// segments).
    pub page_walk: f64,
    /// VMM-intervention overhead as a fraction of ideal time (top dashed
    /// segments).
    pub vmm: f64,
}

impl Overheads {
    /// Combined overhead.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.page_walk + self.vmm
    }
}

/// Everything measured during one workload run under one configuration.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Workload name.
    pub name: String,
    /// Configuration label ("4K:A" etc.).
    pub config_label: String,
    /// Data accesses executed.
    pub accesses: u64,
    /// TLB hierarchy counters.
    pub tlb: TlbStats,
    /// Hardware walker counters (includes faulted walks).
    pub walks: WalkStats,
    /// Completed-walk classification (Table VI).
    pub kinds: KindCounts,
    /// Cycles spent in page walks (references × per-reference cost),
    /// including the A/D-maintenance walks of hardware optimization 1.
    pub walk_cycles: u64,
    /// Extra hardware A/D-update walks performed (HW optimization 1).
    pub ad_walks: u64,
    /// VMtrap counters and cycles.
    pub traps: VmtrapStats,
    /// Guest OS counters.
    pub os: OsStats,
    /// VMM event counters.
    pub vmm: VmmCounters,
    /// Ideal cycles (accesses × base cycles per access).
    pub ideal_cycles: u64,
}

impl RunStats {
    /// The Table IV overhead split.
    #[must_use]
    pub fn overheads(&self) -> Overheads {
        let ideal = self.ideal_cycles.max(1) as f64;
        Overheads {
            page_walk: self.walk_cycles as f64 / ideal,
            vmm: self.traps.total_cycles() as f64 / ideal,
        }
    }

    /// Average memory references per completed TLB-miss walk (the paper's
    /// "memory accesses on TLB miss").
    #[must_use]
    pub fn avg_refs_per_miss(&self) -> f64 {
        self.kinds.avg_refs()
    }

    /// TLB misses per thousand accesses.
    #[must_use]
    pub fn mpka(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.tlb.misses as f64 * 1000.0 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_counts_classify_and_average() {
        let mut k = KindCounts::default();
        k.record(WalkKind::FullShadow, 4);
        k.record(WalkKind::FullShadow, 4);
        k.record(WalkKind::Switched { nested_levels: 1 }, 8);
        k.record(WalkKind::FullNested, 24);
        assert_eq!(k.total(), 4);
        assert_eq!(k.count(WalkKind::FullShadow), 2);
        assert!((k.fraction(WalkKind::FullShadow) - 0.5).abs() < 1e-9);
        assert!((k.avg_refs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overheads_normalize_to_ideal() {
        let stats = RunStats {
            name: "t".into(),
            config_label: "4K:S".into(),
            accesses: 1000,
            tlb: TlbStats::default(),
            walks: WalkStats::default(),
            kinds: KindCounts::default(),
            walk_cycles: 500,
            ad_walks: 0,
            traps: VmtrapStats::default(),
            os: OsStats::default(),
            vmm: VmmCounters::default(),
            ideal_cycles: 1000,
        };
        let o = stats.overheads();
        assert!((o.page_walk - 0.5).abs() < 1e-9);
        assert_eq!(o.vmm, 0.0);
        assert!((o.total() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table6_order_is_paper_order() {
        let labels: Vec<_> = KindCounts::TABLE6_ORDER
            .iter()
            .map(|k| k.table6_label())
            .collect();
        assert_eq!(labels, vec!["Shadow", "L4", "L3", "L2", "L1", "Nested"]);
    }
}
