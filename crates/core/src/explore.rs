//! Bounded interleaving explorer: stateless model checking of the
//! shootdown and technique-switch protocol.
//!
//! The simulator's single deterministic schedule hides ordering bugs —
//! both historical protocol bugs this repo has caught (the
//! `drop_shadow_leaf` missed-flush window, the same-level switch-tie
//! nondeterminism) were only visible under a schedule nobody happened to
//! run. This module reifies the machine's concurrency decision points
//! behind the [`Scheduler`] trait and exhaustively enumerates every
//! schedule up to a configurable branching budget, checking the paranoia
//! oracles, the transition differ, and the static analyzer at every
//! explored state.
//!
//! Three decision points exist (see [`ChoicePoint`]):
//!
//! - **Flush delivery order** — shootdown IPIs race each other, so the
//!   order in which one drained batch's requests land is scheduler-owned
//!   (`Vmm::take_pending_flushes` sorts canonically; alternative 0 is
//!   that order, the production schedule).
//! - **Deferred-shootdown timing** — a chaos-deferred IPI that has come
//!   due may slip additional accesses before landing.
//! - **Technique-switch timing** — the agile interval policy may run at
//!   its tick boundary or postpone to the next one, modeling policy work
//!   racing the guest.
//!
//! The explorer is *stateless* in the model-checking sense: each schedule
//! re-executes the workload from scratch under a [`Scheduler`] that
//! replays a scripted choice prefix and defaults after it. Visited states
//! are deduplicated by the FNV digest of the machine's byte-stable
//! snapshot ([`crate::snapshot::digest`]) keyed with the event cursor, so
//! schedules that commute back into an already-seen state stop spawning
//! extensions. Identical-scope flush twins are never branched on at all —
//! the sleep-set-style reduction argued sound in DESIGN §5j.
//!
//! On a violating state the failing schedule is shrunk to a minimal
//! [`CounterexampleTrace`]: a byte-stable JSON artifact whose choice
//! script replays through the same runner path to the identical findings.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use crate::machine::Machine;
use crate::runner::json::Json;
use crate::snapshot::{self, machine_findings};
use agile_workloads::{Workload, WorkloadSpec};

/// One concurrency decision point reached during a run. The machine
/// passes the point's identity to [`Scheduler::choose`] together with the
/// number of alternatives; alternative 0 is always the behavior of the
/// production runtime (the single built-in schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePoint {
    /// Which pending IPI-carried flush request of the current drain batch
    /// is delivered next. Alternatives index the batch's *distinct* flush
    /// scopes in canonical order; `remaining` counts all undelivered
    /// IPI requests, so `remaining - alternatives` twins were pruned by
    /// the sleep-set reduction at this pick.
    FlushPick {
        /// Drain-batch id the pick belongs to.
        batch: u64,
        /// Undelivered IPI-carried requests at this pick (≥ alternatives).
        remaining: u32,
    },
    /// Whether a due chaos-deferred shootdown batch lands at this access
    /// boundary (0) or slips one more access (1).
    DeferredDelivery,
    /// Whether the agile interval policy runs at this tick boundary (0)
    /// or postpones to the next tick (1).
    SwitchTiming,
}

/// An interleaving scheduler: the machine consults it at every
/// [`ChoicePoint`] when installed via `Machine::set_scheduler`.
///
/// `choose` must return a value in `0..alternatives`; the machine clamps
/// out-of-range answers. A scheduler that always returns 0 reproduces
/// the production runtime's single schedule exactly.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Picks one of `alternatives` behaviors at `point`.
    fn choose(&mut self, point: ChoicePoint, alternatives: u32) -> u32;
}

/// What one choice point looked like when a scripted run passed it.
#[derive(Debug, Clone, Copy)]
struct TrailEntry {
    point: ChoicePoint,
    /// True alternative count at the point.
    alternatives: u32,
    chosen: u32,
    /// The branching budget was exhausted: the DFS must not extend here.
    capped: bool,
}

/// Replays a scripted choice prefix and defaults to 0 after it, recording
/// every choice point into a shared trail for the explorer to extend.
#[derive(Debug)]
struct ScriptedScheduler {
    script: Vec<u32>,
    fuel: usize,
    branches: usize,
    trail: Arc<Mutex<Vec<TrailEntry>>>,
}

impl Scheduler for ScriptedScheduler {
    fn choose(&mut self, point: ChoicePoint, alternatives: u32) -> u32 {
        let mut trail = self.trail.lock().expect("trail poisoned");
        let idx = trail.len();
        let capped = alternatives > 1 && self.branches >= self.fuel;
        if alternatives > 1 && !capped {
            self.branches += 1;
        }
        let chosen = self
            .script
            .get(idx)
            .copied()
            .unwrap_or(0)
            .min(alternatives.saturating_sub(1));
        trail.push(TrailEntry {
            point,
            alternatives,
            chosen,
            capped,
        });
        chosen
    }
}

/// Exploration budgets. Defaults are sized for the CI suite: deep enough
/// to branch on every decision point a small workload reaches, bounded
/// enough to finish in seconds in debug builds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum *branchable* choice points per schedule; points past the
    /// budget take their scripted/default value but spawn no extensions.
    pub fuel: usize,
    /// Maximum schedules (workload re-executions) to run.
    pub max_schedules: u64,
    /// Maximum unique states to insert into the dedup set.
    pub max_states: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            fuel: 6,
            max_schedules: 512,
            max_states: 16_384,
        }
    }
}

/// A minimized, replayable schedule that drives the machine into a
/// violating state — the explorer's counterexample artifact.
///
/// The JSON rendering ([`CounterexampleTrace::to_json`]) has a stable
/// sorted-key schema and round-trips through
/// [`CounterexampleTrace::from_json`], so the artifact can be stored,
/// byte-compared across runs, and replayed later with [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterexampleTrace {
    /// Non-default choice script: the value fed to choice point `i`
    /// (points past the end take alternative 0). Minimal in the sense
    /// that flipping any single entry back to 0 loses the violation.
    pub choices: Vec<u32>,
    /// Configuration label of the violating machine.
    pub config: String,
    /// 1-based workload event at which the findings surfaced.
    pub event: u64,
    /// The findings at the violating state, one per line, exactly as
    /// [`replay`] reproduces them.
    pub findings: Vec<String>,
    /// Workload name the schedule ran.
    pub workload: String,
}

impl CounterexampleTrace {
    /// The trace as a stable sorted-key JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "choices",
                Json::Arr(
                    self.choices
                        .iter()
                        .map(|&c| Json::UInt(u64::from(c)))
                        .collect(),
                ),
            ),
            ("config", Json::Str(self.config.clone())),
            ("event", Json::UInt(self.event)),
            (
                "findings",
                Json::Arr(self.findings.iter().cloned().map(Json::Str).collect()),
            ),
            ("workload", Json::Str(self.workload.clone())),
        ])
    }

    /// Parses a trace rendered by [`CounterexampleTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a missing/mistyped field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let choices = match v.get("choices") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|c| {
                    c.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| "bad choice".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?,
            _ => return Err("missing choices".into()),
        };
        let findings = match v.get("findings") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "bad finding".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
            _ => return Err("missing findings".into()),
        };
        Ok(CounterexampleTrace {
            choices,
            config: v
                .get("config")
                .and_then(Json::as_str)
                .ok_or("missing config")?
                .to_string(),
            event: v
                .get("event")
                .and_then(Json::as_u64)
                .ok_or("missing event")?,
            findings,
            workload: v
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("missing workload")?
                .to_string(),
        })
    }
}

/// What a bounded exploration covered and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Schedules executed (workload re-runs, shrinking excluded).
    pub schedules: u64,
    /// Unique explored states (fresh snapshot digests at event
    /// boundaries).
    pub states: u64,
    /// Event boundaries whose state digest was already visited — the
    /// measure of how often distinct schedules commute back together.
    pub deduped: u64,
    /// Extension alternatives suppressed because their branch state was
    /// already visited via another schedule.
    pub pruned_dedup: u64,
    /// Delivery permutations suppressed by the identical-scope sleep-set
    /// reduction inside the machine's scheduled drain.
    pub pruned_commute: u64,
    /// Extension alternatives suppressed by the `fuel` branching budget.
    pub pruned_capped: u64,
    /// Total choice points passed across all schedules.
    pub choice_points: u64,
    /// A schedule or state budget stopped the search before the tree was
    /// exhausted.
    pub budget_exhausted: bool,
    /// The first violating schedule found, minimized — `None` when every
    /// explored state was clean.
    pub counterexample: Option<CounterexampleTrace>,
}

impl ExploreReport {
    /// Deterministic one-line summary (the `mc` gate's table row).
    #[must_use]
    pub fn render_line(&self) -> String {
        format!(
            "schedules={} states={} deduped={} pruned_dedup={} pruned_commute={} \
             pruned_capped={} choice_points={} exhausted={} violation={}",
            self.schedules,
            self.states,
            self.deduped,
            self.pruned_dedup,
            self.pruned_commute,
            self.pruned_capped,
            self.choice_points,
            if self.budget_exhausted {
                "budget"
            } else {
                "tree"
            },
            self.counterexample.is_some(),
        )
    }

    /// The report as a stable sorted-key JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("budget_exhausted", Json::Bool(self.budget_exhausted)),
            ("choice_points", Json::UInt(self.choice_points)),
            (
                "counterexample",
                self.counterexample
                    .as_ref()
                    .map_or(Json::Null, CounterexampleTrace::to_json),
            ),
            ("deduped", Json::UInt(self.deduped)),
            ("pruned_capped", Json::UInt(self.pruned_capped)),
            ("pruned_commute", Json::UInt(self.pruned_commute)),
            ("pruned_dedup", Json::UInt(self.pruned_dedup)),
            ("schedules", Json::UInt(self.schedules)),
            ("states", Json::UInt(self.states)),
        ])
    }
}

/// One event boundary of a scripted run: the machine's state digest and
/// how many choice points had been passed when the event completed.
struct Boundary {
    digest: u64,
    trail_len: usize,
}

struct RunOutcome {
    trail: Vec<TrailEntry>,
    boundaries: Vec<Boundary>,
    violation: Option<(u64, Vec<String>)>,
}

/// Executes `spec` on a fresh machine from `setup` under the scripted
/// schedule, checking oracles and analyzer after every event.
fn run_one<F: Fn() -> Machine>(
    setup: &F,
    spec: &WorkloadSpec,
    script: &[u32],
    fuel: usize,
) -> RunOutcome {
    let mut machine = setup();
    let trail: Arc<Mutex<Vec<TrailEntry>>> = Arc::default();
    machine.set_scheduler(Box::new(ScriptedScheduler {
        script: script.to_vec(),
        fuel,
        branches: 0,
        trail: Arc::clone(&trail),
    }));
    let mut boundaries = Vec::new();
    let mut violation = None;
    let mut events: u64 = 0;
    for event in Workload::new(spec.clone()) {
        machine.run_event(event);
        events += 1;
        let findings = machine_findings(&mut machine);
        if !findings.is_empty() {
            violation = Some((events, findings));
            break;
        }
        // The dedup key is the byte-stable snapshot plus the workload
        // cursor: equal keys mean "same state, same remaining events" —
        // the suffix tree behind them is identical by determinism.
        let mut bytes = machine.snapshot().to_bytes();
        bytes.extend_from_slice(&events.to_le_bytes());
        boundaries.push(Boundary {
            digest: snapshot::digest(&bytes),
            trail_len: trail.lock().expect("trail poisoned").len(),
        });
    }
    drop(machine);
    let trail = trail.lock().expect("trail poisoned").clone();
    RunOutcome {
        trail,
        boundaries,
        violation,
    }
}

/// Shrinks a violating choice script: repeatedly flips any non-default
/// choice back to 0 (and drops trailing defaults) while the violation
/// persists. The result is 1-minimal — flipping any single surviving
/// non-default entry loses the violation.
fn shrink<F: Fn() -> Machine>(
    setup: &F,
    spec: &WorkloadSpec,
    fuel: usize,
    mut best: Vec<u32>,
) -> Vec<u32> {
    while best.last() == Some(&0) {
        best.pop();
    }
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            while cand.last() == Some(&0) {
                cand.pop();
            }
            if run_one(setup, spec, &cand, fuel).violation.is_some() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Explores every schedule of `spec` up to the budgets in `config`.
///
/// `setup` builds one fresh machine per schedule — arm paranoia,
/// shootdown logging, chaos plans, or planted-bug knobs there; the
/// explorer installs its own scripted [`Scheduler`] on top. After every
/// workload event of every schedule the run is checked (paranoia
/// violations, transition-differ findings, static-analyzer diagnostics);
/// the first violating schedule is shrunk to a minimal
/// [`CounterexampleTrace`] and the search stops. Everything is
/// deterministic: the same inputs produce byte-identical reports.
pub fn explore<F: Fn() -> Machine>(
    setup: F,
    spec: &WorkloadSpec,
    config: &ExploreConfig,
) -> ExploreReport {
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    let mut visited: HashSet<u64> = HashSet::new();
    let mut report = ExploreReport::default();
    while let Some(script) = stack.pop() {
        if report.schedules >= config.max_schedules || report.states >= config.max_states {
            report.budget_exhausted = true;
            break;
        }
        report.schedules += 1;
        let run = run_one(&setup, spec, &script, config.fuel);
        report.choice_points += run.trail.len() as u64;
        let fresh: Vec<bool> = run
            .boundaries
            .iter()
            .map(|b| visited.insert(b.digest))
            .collect();
        for &f in &fresh {
            if f {
                report.states += 1;
            } else {
                report.deduped += 1;
            }
        }
        for entry in &run.trail {
            if let ChoicePoint::FlushPick { remaining, .. } = entry.point {
                report.pruned_commute += u64::from(remaining) - u64::from(entry.alternatives);
            }
            if entry.capped {
                report.pruned_capped += u64::from(entry.alternatives) - 1;
            }
        }
        if let Some((event, findings)) = run.violation {
            let chosen: Vec<u32> = run.trail.iter().map(|t| t.chosen).collect();
            let minimized = shrink(&setup, spec, config.fuel, chosen);
            let rerun = run_one(&setup, spec, &minimized, config.fuel);
            let (event, findings) = rerun.violation.unwrap_or((event, findings));
            report.counterexample = Some(CounterexampleTrace {
                choices: minimized,
                config: setup().snapshot().config_label().to_string(),
                event,
                findings,
                workload: spec.name.clone(),
            });
            break;
        }
        // Extend at every branchable choice point past the scripted
        // prefix. Pushed deepest-first so the stack pops schedules in
        // lexicographic order — pinned state counts depend on it.
        let mut extensions: Vec<Vec<u32>> = Vec::new();
        for (i, entry) in run.trail.iter().enumerate() {
            if i < script.len() || entry.capped || entry.alternatives <= 1 {
                continue;
            }
            // Dedup prune: if the state *entering* this choice's event
            // was already visited via a different schedule (a boundary
            // past this run's own divergence point that was not fresh),
            // its whole subtree — including these alternatives — has
            // been or will be explored from the first visit.
            let converged = run
                .boundaries
                .iter()
                .rposition(|b| b.trail_len <= i)
                .is_some_and(|bi| run.boundaries[bi].trail_len >= script.len() && !fresh[bi]);
            if converged {
                report.pruned_dedup += u64::from(entry.alternatives) - 1;
                continue;
            }
            for alt in 1..entry.alternatives {
                let mut s: Vec<u32> = run.trail[..i].iter().map(|t| t.chosen).collect();
                s.push(alt);
                extensions.push(s);
            }
        }
        while let Some(s) = extensions.pop() {
            stack.push(s);
        }
    }
    report
}

/// Replays a [`CounterexampleTrace`]'s choice script on a fresh machine
/// from `setup` and returns the violating `(event, findings)` it drives
/// the run into, or `None` if the run stays clean (wrong setup or spec).
pub fn replay<F: Fn() -> Machine>(
    setup: F,
    spec: &WorkloadSpec,
    trace: &CounterexampleTrace,
) -> Option<(u64, Vec<String>)> {
    run_one(&setup, spec, &trace.choices, trace.choices.len().max(1)).violation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_round_trips_with_sorted_keys() {
        let trace = CounterexampleTrace {
            choices: vec![0, 2, 1],
            config: "4K:A".into(),
            event: 17,
            findings: vec!["violation[TlbHit]: stale".into()],
            workload: "unit".into(),
        };
        let text = trace.to_json().render();
        assert!(text.starts_with("{\"choices\":[0,2,1],\"config\":"));
        let back = CounterexampleTrace::from_json(&text).expect("parses");
        assert_eq!(back, trace);
        assert_eq!(back.to_json().render(), text, "render is byte-stable");
    }

    #[test]
    fn scripted_scheduler_defaults_and_clamps() {
        let trail: Arc<Mutex<Vec<TrailEntry>>> = Arc::default();
        let mut s = ScriptedScheduler {
            script: vec![9],
            fuel: 1,
            branches: 0,
            trail: Arc::clone(&trail),
        };
        // Script value 9 clamps to the last alternative.
        assert_eq!(s.choose(ChoicePoint::SwitchTiming, 2), 1);
        // Past the script: default 0; past the fuel: capped.
        assert_eq!(s.choose(ChoicePoint::DeferredDelivery, 2), 0);
        let t = trail.lock().expect("trail");
        assert!(!t[0].capped);
        assert!(t[1].capped);
    }
}
