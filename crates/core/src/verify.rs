//! The paranoia layer: differential oracles auditing the simulator as it
//! runs.
//!
//! The paper's central claims are exact *counts* — Table II's 4/8/…/24
//! memory references per switch level — so a silent off-by-one in the
//! walker, a stale TLB entry surviving an unmap, or a miscounted stat
//! invalidates downstream figures without failing a test. This module
//! cross-checks the fast paths against independent oracles:
//!
//! 1. **Reference translator** ([`reference_translate`]): recomputes
//!    gVA⇒hPA by direct radix traversal of the materialized guest and host
//!    page tables, independent of TLBs, PWCs, the nested TLB, and the
//!    shadow tables the walker actually reads. Every TLB hit and completed
//!    walk is compared against it ([`check_tlb_entry`], [`check_walk`]).
//! 2. **Conservation invariants** ([`check_stats`]): identities that must
//!    hold on any [`RunStats`] snapshot — reference-target counts sum to
//!    total references, TLB fills never exceed misses, completed walks
//!    equal classified walks plus hardware A/D walks, per-kind reference
//!    counts sit within the Table II bounds, and trap cycles equal
//!    Σ count × cost.
//! 3. **Coherence audit** ([`audit_coherence`], [`audit_coherence_range`]):
//!    after every unmap, COW marking, clock scan, context switch, and
//!    interval tick, sweeps the TLB hierarchy, the page-walk caches, and
//!    the nested TLB asserting no stale translation survived the
//!    shootdowns. Range-scoped events (unmap, COW, clock scan) audit only
//!    the entries their shootdown could have left stale.
//!
//! All oracles are strictly read-only: enabling
//! [`crate::SystemConfig::paranoia`] changes wall-clock time, never
//! results or fingerprints. Violations are reported as structured
//! [`Violation`] values carrying the offending gVA/level/mode rather than
//! bare panics, so callers can collect, render, or assert on them.

use crate::config::SystemConfig;
use crate::stats::RunStats;
use agile_mem::PhysMem;
use agile_tlb::{NestedTlb, PageWalkCaches, TlbEntry, TlbHierarchy};
use agile_types::{Asid, CodecError, Dec, Enc, GuestFrame, Level, PageSize, Persist, ProcessId};
use agile_vmm::{Vmm, VmtrapKind};
use agile_walk::{WalkKind, WalkOk};

/// Where a violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationSite {
    /// A TLB hit disagreed with the reference translator.
    TlbHit,
    /// A completed walk disagreed with the reference translator.
    Walk,
    /// A stale entry survived in the TLB hierarchy.
    StaleTlb,
    /// A stale entry survived in the page-walk caches.
    StalePwc,
    /// A stale entry survived in the nested TLB.
    StaleNtlb,
    /// A [`RunStats`] conservation identity failed.
    Stats,
    /// A technique-switch (or migration) transition changed the
    /// translation function or left the switching partition malformed
    /// (found by the two-state differ, [`crate::snapshot::diff`]).
    Transition,
}

impl ViolationSite {
    /// Stable identifier used in rendered reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ViolationSite::TlbHit => "tlb-hit",
            ViolationSite::Walk => "walk",
            ViolationSite::StaleTlb => "stale-tlb",
            ViolationSite::StalePwc => "stale-pwc",
            ViolationSite::StaleNtlb => "stale-ntlb",
            ViolationSite::Stats => "stats",
            ViolationSite::Transition => "transition",
        }
    }

    /// Every site, in tag order (the [`Persist`] encoding's order).
    pub const ALL: [ViolationSite; 7] = [
        ViolationSite::TlbHit,
        ViolationSite::Walk,
        ViolationSite::StaleTlb,
        ViolationSite::StalePwc,
        ViolationSite::StaleNtlb,
        ViolationSite::Stats,
        ViolationSite::Transition,
    ];
}

impl Persist for ViolationSite {
    fn save(&self, e: &mut Enc) {
        let tag = ViolationSite::ALL
            .iter()
            .position(|s| s == self)
            .expect("site in ALL") as u8;
        e.u8(tag);
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        let tag = d.u8()?;
        ViolationSite::ALL
            .get(usize::from(tag))
            .copied()
            .map_or_else(|| d.fail(format!("bad ViolationSite tag {tag}")), Ok)
    }
}

/// One oracle violation: the check that failed, the translation it
/// concerns, and a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle caught it.
    pub site: ViolationSite,
    /// Offending guest virtual address, when the check concerns one.
    pub gva: Option<u64>,
    /// Page-table level involved, when known.
    pub level: Option<Level>,
    /// What exactly disagreed.
    pub detail: String,
}

impl Persist for Violation {
    fn save(&self, e: &mut Enc) {
        self.site.save(e);
        self.gva.save(e);
        self.level.save(e);
        e.str(&self.detail);
    }
    fn load(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(Violation {
            site: ViolationSite::load(d)?,
            gva: Option::<u64>::load(d)?,
            level: Option::<Level>::load(d)?,
            detail: d.str()?,
        })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.site.label())?;
        if let Some(gva) = self.gva {
            write!(f, " gva={gva:#x}")?;
        }
        if let Some(level) = self.level {
            write!(f, " level={level:?}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for Violation {}

/// The reference translator's answer for one gVA: what the architectural
/// page tables say, independent of every caching structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefTranslation {
    /// Host frame backing the exact 4 KiB page containing the gVA.
    pub frame_4k: agile_types::HostFrame,
    /// Guest-mapping page size.
    pub guest_size: PageSize,
    /// Host-mapping page size (guest size if the host table has no leaf
    /// yet — Native runs, or lazily unfilled host entries).
    pub host_size: PageSize,
    /// Effective TLB-entry size: `min(guest_size, host_size)` (a large
    /// page used in only one stage is broken into smaller TLB entries).
    pub eff_size: PageSize,
    /// Whether both stages permit writes.
    pub writable: bool,
}

/// Recomputes the translation of `gva` in `pid`'s address space by direct
/// radix traversal of the guest page table and the host (EPT) table,
/// bypassing the shadow tables, TLBs, PWCs, and nested TLB entirely.
///
/// Returns `None` when the guest table has no present leaf for `gva` — in
/// that case no cached translation may exist either.
#[must_use]
pub fn reference_translate(
    mem: &PhysMem,
    vmm: &Vmm,
    pid: ProcessId,
    gva: u64,
) -> Option<RefTranslation> {
    let (gpte, glevel) = vmm.gpt_lookup(mem, pid, gva)?;
    if !gpte.is_present() {
        return None;
    }
    let guest_size = gpte.leaf_size(glevel)?;
    let page_shift = PageSize::Size4K.shift();
    // 4 KiB guest frame of the addressed page within the guest mapping.
    let data_gframe =
        GuestFrame::new(gpte.frame_raw() + ((gva & guest_size.offset_mask()) >> page_shift));
    let host = vmm
        .hpt_lookup(mem, data_gframe.base().raw())
        .filter(|(hpte, _)| hpte.is_present());
    let (frame_4k, host_size, host_w) = match host {
        Some((hpte, hlevel)) => {
            let host_size = hpte.leaf_size(hlevel)?;
            (
                hpte.host_frame()
                    .add(data_gframe.raw() % host_size.base_pages()),
                host_size,
                hpte.is_writable(),
            )
        }
        // No host leaf: Native (which never populates the host table) or a
        // lazily unfilled entry. The machine memory assignment is then the
        // authority, writable, at the guest mapping's granularity.
        None => (vmm.backing(data_gframe)?, guest_size, true),
    };
    Some(RefTranslation {
        frame_4k,
        guest_size,
        host_size,
        eff_size: guest_size.min(host_size),
        writable: gpte.is_writable() && host_w,
    })
}

/// Cross-checks one TLB entry for `gva` against the reference translator.
/// Used both on every TLB hit and by the coherence sweep.
///
/// The entry must translate the 4 KiB page to the same host frame, must
/// not span more than the effective page size, and must not grant writes
/// the page tables forbid (it may be *more* restrictive — shadow
/// dirty-tracking and COW legitimately install read-only entries).
#[must_use]
pub fn check_tlb_entry(
    mem: &PhysMem,
    vmm: &Vmm,
    pid: ProcessId,
    gva: u64,
    entry: &TlbEntry,
    site: ViolationSite,
) -> Option<Violation> {
    let violation = |detail: String| {
        Some(Violation {
            site,
            gva: Some(gva),
            level: None,
            detail,
        })
    };
    let Some(reference) = reference_translate(mem, vmm, pid, gva) else {
        return violation(format!(
            "TLB maps unbacked gva to frame {} ({}, pid {})",
            entry.frame,
            entry.size.label(),
            pid.raw(),
        ));
    };
    let page_4k = GuestFrame::new(gva >> PageSize::Size4K.shift());
    let entry_frame_4k = entry.frame.add(page_4k.raw() % entry.size.base_pages());
    if entry_frame_4k != reference.frame_4k {
        return violation(format!(
            "TLB frame {} != reference frame {} (entry {}, guest {}, host {})",
            entry_frame_4k,
            reference.frame_4k,
            entry.size.label(),
            reference.guest_size.label(),
            reference.host_size.label(),
        ));
    }
    if entry.size > reference.eff_size {
        return violation(format!(
            "TLB entry size {} exceeds effective size {} (guest {}, host {})",
            entry.size.label(),
            reference.eff_size.label(),
            reference.guest_size.label(),
            reference.host_size.label(),
        ));
    }
    if entry.writable && !reference.writable {
        return violation("TLB entry permits writes the page tables forbid".to_string());
    }
    None
}

/// Cross-checks one completed walk against the reference translator and
/// the Table II reference-count model.
///
/// In the exact-count regime — walk caches off (which also disables the
/// nested TLB), both stages 4 KiB, no PWC resume — a walk must perform
/// *exactly* `expected_refs_4k()` references: 4 native/shadow, 8/12/16/20
/// per switch level, 24 fully nested. Outside it, counts must stay within
/// `1..=expected_refs_4k()`.
#[must_use]
pub fn check_walk(
    mem: &PhysMem,
    vmm: &Vmm,
    cfg: &SystemConfig,
    pid: ProcessId,
    gva: u64,
    ok: &WalkOk,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let entry = TlbEntry::new(ok.frame, ok.size, ok.writable);
    if let Some(v) = check_tlb_entry(mem, vmm, pid, gva, &entry, ViolationSite::Walk) {
        out.push(v);
    }
    let expected = ok.kind.expected_refs_4k();
    let exact_regime = !cfg.pwc.enabled
        && !ok.resumed_from_pwc
        && reference_translate(mem, vmm, pid, gva)
            .is_some_and(|r| r.guest_size == PageSize::Size4K && r.host_size == PageSize::Size4K);
    if exact_regime && ok.refs != expected {
        out.push(Violation {
            site: ViolationSite::Walk,
            gva: Some(gva),
            level: None,
            detail: format!(
                "{:?} walk made {} references, Table II says exactly {expected}",
                ok.kind, ok.refs
            ),
        });
    } else if ok.refs == 0 || ok.refs > expected {
        out.push(Violation {
            site: ViolationSite::Walk,
            gva: Some(gva),
            level: None,
            detail: format!(
                "{:?} walk made {} references, outside 1..={expected}",
                ok.kind, ok.refs
            ),
        });
    }
    if ok.host_refs > ok.refs {
        out.push(Violation {
            site: ViolationSite::Walk,
            gva: Some(gva),
            level: None,
            detail: format!(
                "walk counted {} host references out of {} total",
                ok.host_refs, ok.refs
            ),
        });
    }
    out
}

/// Sweeps the TLB hierarchy, page-walk caches, and nested TLB for stale
/// translations: every surviving entry must still agree with the
/// architectural page tables. Called by the machine after every unmap,
/// COW marking, clock scan, context switch, and interval tick when
/// paranoia is on; also usable directly from tests.
#[must_use]
pub fn audit_coherence(
    mem: &PhysMem,
    vmm: &Vmm,
    tlb: &TlbHierarchy,
    pwc: &PageWalkCaches,
    ntlb: &NestedTlb,
) -> Vec<Violation> {
    audit_coherence_impl(mem, vmm, tlb, pwc, ntlb, None)
}

/// Range-scoped variant of [`audit_coherence`]: sweeps only the TLB and
/// PWC entries that can intersect `asid`'s `[start, start + len)` gVA
/// window. After a ranged shootdown (unmap, COW marking, clock scan) only
/// those entries can have gone stale, so auditing the rest is pure cost.
///
/// The nested TLB is still swept in full: it is keyed by guest *physical*
/// frame, which a gVA range does not name — host-table mutations behind a
/// guest-range operation (COW breaks, reclaim) can touch gPAs far from any
/// function of the gVAs.
#[must_use]
#[allow(clippy::too_many_arguments)] // five caches + the three-part scope
pub fn audit_coherence_range(
    mem: &PhysMem,
    vmm: &Vmm,
    tlb: &TlbHierarchy,
    pwc: &PageWalkCaches,
    ntlb: &NestedTlb,
    asid: Asid,
    start: u64,
    len: u64,
) -> Vec<Violation> {
    audit_coherence_impl(mem, vmm, tlb, pwc, ntlb, Some((asid, start, len)))
}

fn audit_coherence_impl(
    mem: &PhysMem,
    vmm: &Vmm,
    tlb: &TlbHierarchy,
    pwc: &PageWalkCaches,
    ntlb: &NestedTlb,
    scope: Option<(Asid, u64, u64)>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (asid, va, entry) in tlb.entries() {
        if let Some((scope_asid, start, len)) = scope {
            let va_end = va.raw().saturating_add(entry.size.bytes());
            if asid != scope_asid || va.raw() >= start.saturating_add(len) || va_end <= start {
                continue;
            }
        }
        let pid = pid_of(asid);
        if !vmm.knows_process(pid) {
            continue;
        }
        if let Some(v) = check_tlb_entry(mem, vmm, pid, va.raw(), &entry, ViolationSite::StaleTlb) {
            out.push(v);
        }
    }
    for (asid, next_level, prefix, entry) in pwc.entries() {
        if let Some((scope_asid, start, len)) = scope {
            // A skip-N entry's key is the gVA truncated to the level the
            // cached pointer was read *from* (the parent of `next_level`) —
            // the same bounds arithmetic `PageWalkCaches::invalidate_range`
            // uses when it processes a shootdown.
            let key_shift = match next_level {
                Level::L1 => Level::L2.index_shift(),
                Level::L2 => Level::L3.index_shift(),
                _ => Level::L4.index_shift(),
            };
            let lo = start >> key_shift;
            let hi = (start + len.saturating_sub(1)) >> key_shift;
            if asid != scope_asid || prefix < lo || prefix > hi {
                continue;
            }
        }
        let pid = pid_of(asid);
        if !vmm.knows_process(pid) {
            continue;
        }
        // A PWC entry caches the host frame of the next table page to
        // read. Whatever mode it resumes in, that frame must still be a
        // live page-table page — a pointer into freed or data memory means
        // a shootdown was missed.
        if !mem.is_table(entry.frame) {
            out.push(Violation {
                site: ViolationSite::StalePwc,
                gva: Some(prefix << next_level.index_shift()),
                level: Some(next_level),
                detail: format!(
                    "PWC caches {:?}-mode pointer to {} which is not a table page",
                    entry.kind, entry.frame,
                ),
            });
        }
    }
    for (vm, gframe, entry) in ntlb.entries() {
        if vm != vmm.vm() {
            continue;
        }
        let host = vmm
            .hpt_lookup(mem, gframe.base().raw())
            .filter(|(hpte, _)| hpte.is_present());
        let Some((hpte, hlevel)) = host else {
            out.push(Violation {
                site: ViolationSite::StaleNtlb,
                gva: None,
                level: None,
                detail: format!(
                    "nested TLB maps unbacked gPA frame {gframe} to {}",
                    entry.frame
                ),
            });
            continue;
        };
        let Some(host_size) = hpte.leaf_size(hlevel) else {
            continue;
        };
        let expect = hpte.host_frame().add(gframe.raw() % host_size.base_pages());
        if entry.frame != expect || entry.size != host_size {
            out.push(Violation {
                site: ViolationSite::StaleNtlb,
                gva: None,
                level: Some(hlevel),
                detail: format!(
                    "nested TLB maps gPA frame {gframe} to {} ({}), host table says {} ({})",
                    entry.frame,
                    entry.size.label(),
                    expect,
                    host_size.label(),
                ),
            });
        } else if entry.writable && !hpte.is_writable() {
            out.push(Violation {
                site: ViolationSite::StaleNtlb,
                gva: None,
                level: Some(hlevel),
                detail: format!(
                    "nested TLB entry for gPA frame {gframe} permits writes the host table forbids"
                ),
            });
        }
    }
    out
}

/// Checks the conservation identities on a [`RunStats`] snapshot.
#[must_use]
pub fn check_stats(stats: &RunStats, cfg: &SystemConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |detail: String| {
        out.push(Violation {
            site: ViolationSite::Stats,
            gva: None,
            level: None,
            detail,
        });
    };
    let w = &stats.walks;
    if w.refs_shadow + w.refs_guest + w.refs_host != w.memory_refs {
        fail(format!(
            "reference targets do not sum: shadow {} + guest {} + host {} != total {}",
            w.refs_shadow, w.refs_guest, w.refs_host, w.memory_refs
        ));
    }
    let t = &stats.tlb;
    if t.l1_hits + t.l2_hits + t.misses != t.lookups() {
        fail(format!(
            "TLB outcomes do not sum: l1 {} + l2 {} + misses {} != lookups {}",
            t.l1_hits,
            t.l2_hits,
            t.misses,
            t.lookups()
        ));
    }
    if t.fills > t.misses {
        fail(format!("TLB fills {} exceed misses {}", t.fills, t.misses));
    }
    if w.attempts != w.walks + w.faulted_walks {
        fail(format!(
            "walk attempts do not conserve: {} attempts != {} completed + {} faulted",
            w.attempts, w.walks, w.faulted_walks
        ));
    }
    // Cross-structure: every TLB miss starts at least one walk attempt
    // (fault retries and hardware A/D walks only add more), so the walker's
    // entry counter must dominate the TLB's independent miss counter.
    if w.attempts < t.misses {
        fail(format!(
            "walker saw {} attempts for {} TLB misses",
            w.attempts, t.misses
        ));
    }
    if w.walks != stats.kinds.total() + stats.ad_walks {
        fail(format!(
            "completed walks {} != classified walks {} + A/D walks {}",
            w.walks,
            stats.kinds.total(),
            stats.ad_walks
        ));
    }
    for kind in [
        WalkKind::Native,
        WalkKind::FullShadow,
        WalkKind::Switched { nested_levels: 1 },
        WalkKind::Switched { nested_levels: 2 },
        WalkKind::Switched { nested_levels: 3 },
        WalkKind::Switched { nested_levels: 4 },
        WalkKind::FullNested,
    ] {
        let count = stats.kinds.count(kind);
        let refs = stats.kinds.refs(kind);
        let max = u64::from(kind.expected_refs_4k());
        if count == 0 {
            if refs != 0 {
                fail(format!("{kind:?}: {refs} references but zero walks"));
            }
            continue;
        }
        if refs < count || refs > count * max {
            fail(format!(
                "{kind:?}: {refs} references over {count} walks outside bounds {count}..={}",
                count * max
            ));
        }
    }
    for kind in VmtrapKind::ALL {
        let count = stats.traps.count(kind);
        let cycles = stats.traps.cycles(kind);
        let cost = cfg.vmm.costs.cost(kind);
        if cycles != count * cost {
            fail(format!(
                "trap {}: {cycles} cycles != {count} × {cost}",
                kind.label()
            ));
        }
    }
    out
}

fn pid_of(asid: Asid) -> ProcessId {
    // ASIDs are assigned as the identity image of process ids
    // (`Asid::from(pid)`), so the audit can reverse the mapping.
    ProcessId::new(asid.raw())
}
