//! Top-level simulator for the agile-paging reproduction.
//!
//! [`Machine`] wires the substrates together — simulated physical memory,
//! the guest OS, the VMM, the TLB hierarchy, the page walk caches, and the
//! hardware walker — and executes workload event streams under any of the
//! five techniques (base native, nested, shadow, agile, SHSP). [`RunStats`]
//! collects what the paper's evaluation measures; the [`experiments`]
//! module regenerates every table and figure (see `DESIGN.md` for the
//! index).
//!
//! # Quickstart
//!
//! ```
//! use agile_core::{Machine, SystemConfig};
//! use agile_vmm::Technique;
//! use agile_workloads::{ChurnSpec, Pattern, WorkloadSpec};
//!
//! let spec = WorkloadSpec {
//!     name: "hello".into(),
//!     footprint: 16 << 20,
//!     pattern: Pattern::Uniform,
//!     write_fraction: 0.3,
//!     accesses: 10_000,
//!     accesses_per_tick: 5_000,
//!     churn: ChurnSpec::none(),
//!     prefault: false,
//!     prefault_writes: true,
//!     seed: 1,
//! };
//! let mut machine = Machine::new(SystemConfig::new(Technique::Shadow));
//! let stats = machine.run_spec(&spec);
//! assert_eq!(stats.accesses, 10_000);
//! assert!(stats.tlb.misses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod chaos;
mod config;
pub mod experiments;
pub mod explore;
pub mod host;
mod machine;
pub mod profile;
mod report;
pub mod runner;
pub mod service;
pub mod snapshot;
mod stats;
pub mod verify;

pub use analyze::{
    check_host_frames, detect_host_shootdown_races, detect_shootdown_races, FlushScope, LintCode,
    LintDiag, LintReport, LintSeverity, ShootdownEvent, ShootdownLog, VmFrameView, VmShootdownView,
};
pub use chaos::{
    render_log, ChaosScenario, DegradationEvent, DegradationKind, FaultPlan, ScenarioKind,
};
pub use config::SystemConfig;
pub use explore::{
    explore, replay, ChoicePoint, CounterexampleTrace, ExploreConfig, ExploreReport, Scheduler,
};
pub use host::{Host, HostConfig, MigrationOutcome};
pub use machine::{AccessError, Machine};
pub use profile::{FlushApplyStats, HotPathProfile};
pub use report::Table;
pub use runner::{
    parallel_map, try_parallel_map, Json, RecoveryControls, RunArtifact, RunOutcome, RunPlan,
    RunRequest, WorkerPanic,
};
pub use service::{
    CancelToken, JobId, JobState, JobStatus, PlanOptions, Service, ServiceMetrics, StopCause,
};
pub use snapshot::{
    bisect_violation, bisect_violation_with, diff, digest, BisectReport, Checkpoint,
    CheckpointRing, CheckpointSlot, DiffIntent, MachineSnapshot, ProcessImage, TransitionView,
    WorkerKill, SNAPSHOT_VERSION,
};
pub use stats::{KindCounts, Overheads, RunStats};
pub use verify::{RefTranslation, Violation, ViolationSite};

pub use agile_guest::{FaultError, GuestOs, OsStats, SegFault, Vma, VmaBacking};
pub use agile_mem::{FramePool, PhysMem, VM_FRAME_SPAN};
pub use agile_tlb::{PwcConfig, TlbConfig, TlbEntry};
pub use agile_types as types;
pub use agile_vmm::{
    AgileOptions, NestedToShadowPolicy, ShspOptions, Technique, VmmConfig, VmtrapCosts, VmtrapKind,
    VmtrapStats,
};
pub use agile_walk::{WalkKind, WalkStats};
pub use agile_workloads::{
    micro_benches, profile, ChurnSpec, Event, MicroBench, Pattern, Profile, Workload, WorkloadSpec,
};
