//! Figure 5: execution-time overheads (page walks + VMM interventions)
//! for every workload under 4K/2M × {Base, Nested, Shadow, Agile}.

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::{pct, Table};
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use crate::stats::RunStats;
use agile_vmm::{AgileOptions, Technique};
use agile_workloads::{profile, Profile};

/// One Figure 5 bar: a workload × configuration pair.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// Configuration label ("4K:B" … "2M:A").
    pub config: String,
    /// Page-walk overhead fraction (bottom bar segment).
    pub page_walk: f64,
    /// VMM-intervention overhead fraction (top dashed segment).
    pub vmm: f64,
    /// Full run statistics.
    pub stats: RunStats,
}

impl Fig5Row {
    /// Combined overhead.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.page_walk + self.vmm
    }
}

impl JsonRow for Fig5Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("config", Json::Str(self.config.clone())),
            ("page_walk", Json::Num(self.page_walk)),
            ("vmm", Json::Num(self.vmm)),
            ("total", Json::Num(self.total())),
            (
                "avg_refs_per_miss",
                Json::Num(self.stats.avg_refs_per_miss()),
            ),
            ("mpka", Json::Num(self.stats.mpka())),
        ])
    }
}

/// The four techniques of Figure 5 in bar order.
fn techniques() -> [Technique; 4] {
    [
        Technique::Native,
        Technique::Nested,
        Technique::Shadow,
        Technique::Agile(AgileOptions::default()),
    ]
}

/// Runs the Figure 5 sweep with `accesses` data accesses per run across
/// `threads` workers. `workloads` defaults to all eight paper profiles
/// when `None`.
#[must_use]
pub fn fig5(
    accesses: u64,
    workloads: Option<&[Profile]>,
    threads: usize,
) -> ExperimentRun<Fig5Row> {
    let list = workloads.unwrap_or(&Profile::ALL);
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for &wl in list {
        for thp in [false, true] {
            for technique in techniques() {
                let mut cfg = SystemConfig::new(technique);
                if thp {
                    cfg = cfg.with_thp();
                }
                // Warm-up exclusion: the first third of the run populates
                // memory and tables; measurement covers the rest.
                plan.push(RunRequest::new(cfg, profile(wl, accesses)).with_warmup(accesses / 3));
            }
        }
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows = artifacts
        .iter()
        .map(|a| {
            let o = a.stats.overheads();
            Fig5Row {
                workload: a.workload.clone(),
                config: a.config.label(),
                page_walk: o.page_walk,
                vmm: o.vmm,
                stats: a.stats.clone(),
            }
        })
        .collect::<Vec<_>>();
    ExperimentRun {
        name: "fig5",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

fn render(rows: &[Fig5Row], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "workload".into(),
        "config".into(),
        "page-walk".into(),
        "vmtrap".into(),
        "total".into(),
        "avg refs/miss".into(),
        "MPKA".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.workload.clone(),
            r.config.clone(),
            pct(r.page_walk),
            pct(r.vmm),
            pct(r.total()),
            format!("{:.2}", r.stats.avg_refs_per_miss()),
            format!("{:.1}", r.stats.mpka()),
        ]);
    }
    format!(
        "Figure 5: execution time overheads (page walk + VMM intervention)\n\
         ({accesses} accesses per run; overheads normalized to ideal cycles)\n\n{}",
        table.render()
    )
}

/// Convenience: the best (lowest total overhead) of nested and shadow for a
/// workload's rows at one page size.
#[must_use]
pub fn best_of_constituents(rows: &[Fig5Row], workload: &str, thp: bool) -> Option<f64> {
    let prefix = if thp { "2M" } else { "4K" };
    let pick = |tech: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.config == format!("{prefix}:{tech}"))
            .map(Fig5Row::total)
    };
    match (pick("N"), pick("S")) {
        (Some(n), Some(s)) => Some(n.min(s)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quick two-workload sweep exercises the full pipeline. The real
    /// shape assertions live in the integration tests with more accesses.
    #[test]
    fn quick_sweep_produces_all_bars() {
        let run = fig5(4_000, Some(&[Profile::Mcf, Profile::Dedup]), 2);
        assert_eq!(run.rows.len(), 2 * 2 * 4);
        assert_eq!(run.artifacts.len(), run.rows.len());
        assert!(run.text.contains("4K:B"));
        assert!(run.text.contains("2M:A"));
        for r in &run.rows {
            assert!(r.total() >= 0.0);
        }
    }

    #[test]
    fn best_of_constituents_picks_minimum() {
        let run = fig5(3_000, Some(&[Profile::Mcf]), 1);
        let best = best_of_constituents(&run.rows, "mcf", false).unwrap();
        let nested = run
            .rows
            .iter()
            .find(|r| r.config == "4K:N")
            .unwrap()
            .total();
        let shadow = run
            .rows
            .iter()
            .find(|r| r.config == "4K:S")
            .unwrap()
            .total();
        assert!((best - nested.min(shadow)).abs() < 1e-12);
    }
}
