//! Section VII-C: agile paging versus SHSP (selective hardware/software
//! paging), on a workload with alternating phases.
//!
//! SHSP switches an entire process temporally; agile paging is temporal
//! *and spatial*. A workload whose page-table churn is confined to part of
//! the address space shows the difference: SHSP must either eat nested-walk
//! latency everywhere or pay wholesale shadow rebuilds, while agile paging
//! nests only the churning subtree.

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::report::{pct, Table};
use crate::stats::RunStats;
use agile_vmm::{AgileOptions, ShspOptions, Technique};
use agile_workloads::{ChurnSpec, Pattern, WorkloadSpec};

/// One technique's result on the phase workload.
#[derive(Debug, Clone)]
pub struct ShspRow {
    /// Technique label.
    pub technique: String,
    /// Total overhead fraction.
    pub total_overhead: f64,
    /// Full stats.
    pub stats: RunStats,
}

/// The phase workload: a large mostly-static footprint with a small
/// churning slice.
#[must_use]
pub fn phase_spec(accesses: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "phase-mix".into(),
        footprint: 64 << 20,
        pattern: Pattern::Hotspot {
            hot_fraction: 0.3,
            hot_probability: 0.6,
        },
        write_fraction: 0.4,
        accesses,
        accesses_per_tick: (accesses / 8).max(1),
        churn: ChurnSpec {
            remap_every: Some((accesses / 64).max(1)),
            remap_pages: 32,
            ..ChurnSpec::none()
        },
        prefault: false,
        prefault_writes: true,
        seed: 0x5457,
    }
}

/// Runs the comparison.
#[must_use]
pub fn shsp_compare(accesses: u64) -> (String, Vec<ShspRow>) {
    let techniques = [
        ("Nested", Technique::Nested),
        ("Shadow", Technique::Shadow),
        ("SHSP", Technique::Shsp(ShspOptions::default())),
        ("Agile", Technique::Agile(AgileOptions::default())),
    ];
    let mut rows = Vec::new();
    for (name, t) in techniques {
        let stats =
            Machine::new(SystemConfig::new(t)).run_spec_measured(&phase_spec(accesses), accesses / 4);
        rows.push(ShspRow {
            technique: name.to_string(),
            total_overhead: stats.overheads().total(),
            stats,
        });
    }
    (render(&rows, accesses), rows)
}

fn render(rows: &[ShspRow], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "technique".into(),
        "page-walk".into(),
        "vmtrap".into(),
        "total".into(),
        "avg refs/miss".into(),
    ]);
    for r in rows {
        let o = r.stats.overheads();
        table.row(vec![
            r.technique.clone(),
            pct(o.page_walk),
            pct(o.vmm),
            pct(r.total_overhead),
            format!("{:.2}", r.stats.avg_refs_per_miss()),
        ]);
    }
    format!(
        "SHSP comparison (Section VII-C): phase-mix workload, {accesses} accesses\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_techniques_report() {
        let (text, rows) = shsp_compare(6_000);
        assert_eq!(rows.len(), 4);
        assert!(text.contains("SHSP"));
        assert!(text.contains("Agile"));
    }
}
