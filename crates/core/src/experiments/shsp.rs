//! Section VII-C: agile paging versus SHSP (selective hardware/software
//! paging), on a workload with alternating phases.
//!
//! SHSP switches an entire process temporally; agile paging is temporal
//! *and spatial*. A workload whose page-table churn is confined to part of
//! the address space shows the difference: SHSP must either eat nested-walk
//! latency everywhere or pay wholesale shadow rebuilds, while agile paging
//! nests only the churning subtree.

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::{pct, Table};
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use crate::stats::RunStats;
use agile_vmm::{AgileOptions, ShspOptions, Technique};
use agile_workloads::{ChurnSpec, Pattern, WorkloadSpec};

/// One technique's result on the phase workload.
#[derive(Debug, Clone)]
pub struct ShspRow {
    /// Technique label.
    pub technique: String,
    /// Total overhead fraction.
    pub total_overhead: f64,
    /// Full stats.
    pub stats: RunStats,
}

impl JsonRow for ShspRow {
    fn to_json(&self) -> Json {
        let o = self.stats.overheads();
        Json::obj(vec![
            ("technique", Json::Str(self.technique.clone())),
            ("page_walk", Json::Num(o.page_walk)),
            ("vmm", Json::Num(o.vmm)),
            ("total", Json::Num(self.total_overhead)),
            (
                "avg_refs_per_miss",
                Json::Num(self.stats.avg_refs_per_miss()),
            ),
        ])
    }
}

/// The phase workload: a large mostly-static footprint with a small
/// churning slice.
#[must_use]
pub fn phase_spec(accesses: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "phase-mix".into(),
        footprint: 64 << 20,
        pattern: Pattern::Hotspot {
            hot_fraction: 0.3,
            hot_probability: 0.6,
        },
        write_fraction: 0.4,
        accesses,
        accesses_per_tick: (accesses / 8).max(1),
        churn: ChurnSpec {
            remap_every: Some((accesses / 64).max(1)),
            remap_pages: 32,
            ..ChurnSpec::none()
        },
        prefault: false,
        prefault_writes: true,
        seed: 0x5457,
    }
}

/// Runs the comparison across `threads` workers.
#[must_use]
pub fn shsp_compare(accesses: u64, threads: usize) -> ExperimentRun<ShspRow> {
    let techniques = [
        ("Nested", Technique::Nested),
        ("Shadow", Technique::Shadow),
        ("SHSP", Technique::Shsp(ShspOptions::default())),
        ("Agile", Technique::Agile(AgileOptions::default())),
    ];
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for (name, t) in techniques {
        plan.push(
            RunRequest::new(SystemConfig::new(t), phase_spec(accesses))
                .with_warmup(accesses / 4)
                .with_label(name),
        );
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<ShspRow> = techniques
        .iter()
        .zip(&artifacts)
        .map(|((name, _), a)| ShspRow {
            technique: (*name).to_string(),
            total_overhead: a.stats.overheads().total(),
            stats: a.stats.clone(),
        })
        .collect();
    ExperimentRun {
        name: "shsp",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

fn render(rows: &[ShspRow], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "technique".into(),
        "page-walk".into(),
        "vmtrap".into(),
        "total".into(),
        "avg refs/miss".into(),
    ]);
    for r in rows {
        let o = r.stats.overheads();
        table.row(vec![
            r.technique.clone(),
            pct(o.page_walk),
            pct(o.vmm),
            pct(r.total_overhead),
            format!("{:.2}", r.stats.avg_refs_per_miss()),
        ]);
    }
    format!(
        "SHSP comparison (Section VII-C): phase-mix workload, {accesses} accesses\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_techniques_report() {
        let run = shsp_compare(6_000, 2);
        assert_eq!(run.rows.len(), 4);
        assert!(run.text.contains("SHSP"));
        assert!(run.text.contains("Agile"));
        assert_eq!(run.artifacts.len(), 4);
    }
}
