//! Experiment runners: one per paper table/figure plus the ablations
//! called out in `DESIGN.md`.
//!
//! Every runner is deterministic, fans its run matrix through the
//! [`crate::runner`] engine (so `threads` only changes wall-clock time,
//! never results), and returns an [`ExperimentRun`]: a rendered text table
//! for humans, typed rows for tests, and the full [`RunArtifact`]s for
//! structured JSON/CSV emission.

pub mod ablate;
pub mod fig5;
pub mod shsp;
pub mod table1;
pub mod table2;
pub mod table6;
pub mod twostep;
pub mod vmtraps;

pub use ablate::{ablate_hw, ablate_interval, ablate_policy, ablate_pwc, AblateRow};
pub use fig5::{fig5, Fig5Row};
pub use shsp::{shsp_compare, ShspRow};
pub use table1::{table1, Table1Row};
pub use table2::{table2, Table2Row};
pub use table6::{table6, Table6Row};
pub use twostep::{twostep, TwoStepRow};
pub use vmtraps::{vmtrap_costs, VmtrapRow};

use crate::runner::{Json, RunArtifact};

/// Schema tag embedded in every serialized experiment.
pub const EXPERIMENT_SCHEMA: &str = "agile-paging/experiment/v1";

/// A row type that knows its flat JSON form (one object per row; nested
/// objects become dotted columns in CSV output).
pub trait JsonRow {
    /// This row as a JSON object.
    fn to_json(&self) -> Json;
}

/// The full result of one experiment: human-readable text, typed rows,
/// and the raw run artifacts behind them.
#[derive(Debug, Clone)]
pub struct ExperimentRun<R> {
    /// Stable experiment name (used for artifact file names).
    pub name: &'static str,
    /// Rendered text table (what the binaries print).
    pub text: String,
    /// Typed result rows.
    pub rows: Vec<R>,
    /// Every underlying simulation run, in matrix order. Empty for
    /// experiments (Table II) whose unit of work is not a machine run.
    pub artifacts: Vec<RunArtifact>,
}

impl<R: JsonRow> ExperimentRun<R> {
    /// The rows as a JSON array.
    #[must_use]
    pub fn rows_json(&self) -> Json {
        Json::Arr(self.rows.iter().map(JsonRow::to_json).collect())
    }

    /// Full JSON document: schema, name, rows, and per-run artifacts.
    ///
    /// Artifacts are rendered via [`RunArtifact::deterministic_json`] (no
    /// wall-clock timing), so the document is byte-identical run-to-run and
    /// at any thread count — CI `cmp`s the emitted files to enforce it.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(EXPERIMENT_SCHEMA.into())),
            ("name", Json::Str(self.name.into())),
            ("rows", self.rows_json()),
            (
                "runs",
                Json::Arr(
                    self.artifacts
                        .iter()
                        .map(RunArtifact::deterministic_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// The rows flattened to CSV (dotted columns for nested objects).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let rows: Vec<Json> = self.rows.iter().map(JsonRow::to_json).collect();
        crate::runner::to_csv(&rows)
    }
}
