//! Experiment runners: one per paper table/figure plus the ablations
//! called out in `DESIGN.md`.
//!
//! Every runner is deterministic, prints the configuration knobs it used,
//! and returns structured results alongside a rendered text table so tests
//! can assert the paper's *shape* claims (who wins, by roughly what factor,
//! where the crossovers fall).

pub mod ablate;
pub mod fig5;
pub mod shsp;
pub mod table1;
pub mod table2;
pub mod table6;
pub mod twostep;
pub mod vmtraps;

pub use ablate::{ablate_hw, ablate_interval, ablate_policy, ablate_pwc};
pub use fig5::{fig5, Fig5Row};
pub use shsp::{shsp_compare, ShspRow};
pub use table1::table1;
pub use table2::{table2, Table2Row};
pub use table6::{table6, Table6Row};
pub use twostep::{twostep, TwoStepRow};
pub use vmtraps::{vmtrap_costs, VmtrapRow};
