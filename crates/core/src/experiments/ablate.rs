//! Ablations for the design choices `DESIGN.md` calls out: the two
//! optional hardware optimizations (Section IV), the nested⇒shadow policy
//! choice (Section III-C), and the page walk caches (Section III-A).

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::report::{pct, Table};
use agile_vmm::{AgileOptions, NestedToShadowPolicy, Technique, VmtrapKind};
use agile_workloads::{profile, ChurnSpec, Pattern, Profile, WorkloadSpec};

/// A/B 1: the hardware optimizations. Uses a context-switch-plus-A/D-heavy
/// workload where both optimizations matter.
#[must_use]
pub fn ablate_hw(accesses: u64) -> String {
    // Read-first demand faulting builds read-only shadow leaves (the
    // dirty-bit tracking trick); later first-writes then need A/D
    // maintenance — a VMtrap without HW optimization 1, a counted nested
    // walk with it. Frequent guest context switches exercise HW
    // optimization 2. No page-table churn, so the agile policy leaves the
    // address space in shadow mode and the optimizations carry the signal.
    let spec = WorkloadSpec {
        name: "hw-opt-probe".into(),
        footprint: 16 << 20,
        pattern: Pattern::Uniform,
        write_fraction: 0.3,
        accesses,
        accesses_per_tick: (accesses / 10).max(1),
        churn: ChurnSpec {
            ctx_switch_every: Some(200),
            processes: 4,
            ..ChurnSpec::none()
        },
        prefault: true,
        prefault_writes: false,
        seed: 0xAB1,
    };
    let variants = [
        ("no HW opts", AgileOptions::without_hw_opts()),
        (
            "+A/D bits",
            AgileOptions {
                hw_ad_bits: true,
                ..AgileOptions::without_hw_opts()
            },
        ),
        (
            "+ctx cache",
            AgileOptions {
                hw_ctx_cache: true,
                ctx_cache_entries: 8,
                ..AgileOptions::without_hw_opts()
            },
        ),
        ("both (default)", AgileOptions::default()),
    ];
    let mut table = Table::new(vec![
        "variant".into(),
        "ad-sync traps".into(),
        "ctx-switch traps".into(),
        "ad walks (hw)".into(),
        "vmtrap overhead".into(),
        "total overhead".into(),
    ]);
    for (name, opts) in variants {
        let stats = Machine::new(SystemConfig::new(Technique::Agile(opts)))
            .run_spec_measured(&spec, accesses / 4);
        let o = stats.overheads();
        table.row(vec![
            name.into(),
            stats.traps.count(VmtrapKind::AdBitSync).to_string(),
            stats.traps.count(VmtrapKind::ContextSwitch).to_string(),
            stats.ad_walks.to_string(),
            pct(o.vmm),
            pct(o.total()),
        ]);
    }
    format!(
        "Ablation: hardware optimizations (Section IV), {accesses} accesses\n\n{}",
        table.render()
    )
}

/// A/B 2: nested⇒shadow policy (periodic reset vs dirty-bit scan) on a
/// workload whose churn moves around, provoking oscillation under the
/// simple policy.
#[must_use]
pub fn ablate_policy(accesses: u64) -> String {
    let mut spec = profile(Profile::Dedup, accesses);
    spec.name = "policy-probe(dedup)".into();
    let mut table = Table::new(vec![
        "policy".into(),
        "to-nested".into(),
        "to-shadow".into(),
        "hidden faults".into(),
        "vmtrap overhead".into(),
        "total overhead".into(),
    ]);
    for (name, policy) in [
        ("periodic-reset", NestedToShadowPolicy::PeriodicReset),
        ("dirty-bit-scan", NestedToShadowPolicy::DirtyBitScan),
    ] {
        let opts = AgileOptions {
            nested_to_shadow: policy,
            ..AgileOptions::default()
        };
        let stats = Machine::new(SystemConfig::new(Technique::Agile(opts)))
            .run_spec_measured(&spec, accesses / 4);
        let o = stats.overheads();
        table.row(vec![
            name.into(),
            stats.vmm.to_nested.to_string(),
            stats.vmm.to_shadow.to_string(),
            stats.traps.count(VmtrapKind::HiddenPageFault).to_string(),
            pct(o.vmm),
            pct(o.total()),
        ]);
    }
    format!(
        "Ablation: nested=>shadow policy (Section III-C), {accesses} accesses\n\n{}",
        table.render()
    )
}

/// A/B 3: page walk caches on/off per technique (Section III-A).
#[must_use]
pub fn ablate_pwc(accesses: u64) -> String {
    let spec = profile(Profile::Graph500, accesses);
    let mut table = Table::new(vec![
        "technique".into(),
        "PWC".into(),
        "avg refs/miss".into(),
        "page-walk overhead".into(),
    ]);
    for technique in [
        Technique::Native,
        Technique::Nested,
        Technique::Shadow,
        Technique::Agile(AgileOptions::default()),
    ] {
        for pwc_on in [true, false] {
            let mut cfg = SystemConfig::new(technique);
            if !pwc_on {
                cfg = cfg.without_pwc();
            }
            let stats = Machine::new(cfg).run_spec_measured(&spec, accesses / 4);
            table.row(vec![
                technique.label().into(),
                if pwc_on { "on" } else { "off" }.into(),
                format!("{:.2}", stats.avg_refs_per_miss()),
                pct(stats.overheads().page_walk),
            ]);
        }
    }
    format!(
        "Ablation: page walk caches (Section III-A), graph500 profile, {accesses} accesses\n\n{}",
        table.render()
    )
}

/// A/B 4 (extension beyond the paper): sensitivity of agile paging to the
/// policy interval length. The paper fixes it at ~1 s; this sweep shows the
/// mechanism is robust across a wide range — too-short intervals oscillate
/// (more conversions), too-long intervals adapt slowly (more traps before
/// nesting kicks in).
#[must_use]
pub fn ablate_interval(accesses: u64) -> String {
    let mut table = Table::new(vec![
        "ticks/run".into(),
        "to-nested".into(),
        "to-shadow".into(),
        "gpt-write traps".into(),
        "vmtrap overhead".into(),
        "total overhead".into(),
    ]);
    for divisor in [50u64, 20, 10, 5, 2] {
        let mut spec = profile(Profile::Dedup, accesses);
        spec.accesses_per_tick = (accesses / divisor).max(1);
        let stats = Machine::new(SystemConfig::new(Technique::Agile(AgileOptions::default())))
            .run_spec_measured(&spec, accesses / 4);
        let o = stats.overheads();
        table.row(vec![
            divisor.to_string(),
            stats.vmm.to_nested.to_string(),
            stats.vmm.to_shadow.to_string(),
            stats.traps.count(VmtrapKind::GptWrite).to_string(),
            pct(o.vmm),
            pct(o.total()),
        ]);
    }
    format!(
        "Ablation (extension): policy interval length, dedup profile, {accesses} accesses

{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_ablation_renders_four_variants() {
        let text = ablate_hw(3_000);
        assert!(text.contains("no HW opts"));
        assert!(text.contains("both (default)"));
    }

    #[test]
    fn policy_ablation_renders_both_policies() {
        let text = ablate_policy(3_000);
        assert!(text.contains("periodic-reset"));
        assert!(text.contains("dirty-bit-scan"));
    }

    #[test]
    fn pwc_ablation_shows_reduction() {
        let text = ablate_pwc(3_000);
        assert!(text.contains("PWC"));
        assert!(text.contains("off"));
    }

    #[test]
    fn interval_ablation_sweeps_five_lengths() {
        let text = ablate_interval(4_000);
        assert!(text.matches('\n').count() >= 9, "{text}");
        assert!(text.contains("ticks/run"));
    }
}
