//! Ablations for the design choices `DESIGN.md` calls out: the two
//! optional hardware optimizations (Section IV), the nested⇒shadow policy
//! choice (Section III-C), and the page walk caches (Section III-A).

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::{pct, Table};
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use agile_vmm::{AgileOptions, NestedToShadowPolicy, Technique, VmtrapKind};
use agile_workloads::{profile, ChurnSpec, Pattern, Profile, WorkloadSpec};

/// One ablation variant's headline numbers. The per-ablation counters
/// (trap counts, conversion counts, …) ride in `extras`, keyed by the
/// rendered column name.
#[derive(Debug, Clone)]
pub struct AblateRow {
    /// Variant label ("no HW opts", "periodic-reset", "N/on", …).
    pub variant: String,
    /// VMtrap overhead fraction.
    pub vmm_overhead: f64,
    /// Total overhead fraction.
    pub total_overhead: f64,
    /// Ablation-specific counters, in column order.
    pub extras: Vec<(String, f64)>,
}

impl JsonRow for AblateRow {
    fn to_json(&self) -> Json {
        let extras = self
            .extras
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect();
        Json::obj(vec![
            ("variant", Json::Str(self.variant.clone())),
            ("vmm_overhead", Json::Num(self.vmm_overhead)),
            ("total_overhead", Json::Num(self.total_overhead)),
            ("extras", Json::Obj(extras)),
        ])
    }
}

/// A/B 1: the hardware optimizations. Uses a context-switch-plus-A/D-heavy
/// workload where both optimizations matter.
#[must_use]
pub fn ablate_hw(accesses: u64, threads: usize) -> ExperimentRun<AblateRow> {
    // Read-first demand faulting builds read-only shadow leaves (the
    // dirty-bit tracking trick); later first-writes then need A/D
    // maintenance — a VMtrap without HW optimization 1, a counted nested
    // walk with it. Frequent guest context switches exercise HW
    // optimization 2. No page-table churn, so the agile policy leaves the
    // address space in shadow mode and the optimizations carry the signal.
    let spec = WorkloadSpec {
        name: "hw-opt-probe".into(),
        footprint: 16 << 20,
        pattern: Pattern::Uniform,
        write_fraction: 0.3,
        accesses,
        accesses_per_tick: (accesses / 10).max(1),
        churn: ChurnSpec {
            ctx_switch_every: Some(200),
            processes: 4,
            ..ChurnSpec::none()
        },
        prefault: true,
        prefault_writes: false,
        seed: 0xAB1,
    };
    let variants = [
        ("no HW opts", AgileOptions::without_hw_opts()),
        (
            "+A/D bits",
            AgileOptions {
                hw_ad_bits: true,
                ..AgileOptions::without_hw_opts()
            },
        ),
        (
            "+ctx cache",
            AgileOptions {
                hw_ctx_cache: true,
                ctx_cache_entries: 8,
                ..AgileOptions::without_hw_opts()
            },
        ),
        ("both (default)", AgileOptions::default()),
    ];
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for (name, opts) in variants {
        plan.push(
            RunRequest::new(SystemConfig::new(Technique::Agile(opts)), spec.clone())
                .with_warmup(accesses / 4)
                .with_label(name),
        );
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<AblateRow> = variants
        .iter()
        .zip(&artifacts)
        .map(|((name, _), a)| {
            let o = a.stats.overheads();
            AblateRow {
                variant: (*name).to_string(),
                vmm_overhead: o.vmm,
                total_overhead: o.total(),
                extras: vec![
                    (
                        "ad-sync traps".into(),
                        a.stats.traps.count(VmtrapKind::AdBitSync) as f64,
                    ),
                    (
                        "ctx-switch traps".into(),
                        a.stats.traps.count(VmtrapKind::ContextSwitch) as f64,
                    ),
                    ("ad walks (hw)".into(), a.stats.ad_walks as f64),
                ],
            }
        })
        .collect();
    ExperimentRun {
        name: "ablate_hw",
        text: render(
            &rows,
            "variant",
            &format!("Ablation: hardware optimizations (Section IV), {accesses} accesses"),
        ),
        rows,
        artifacts,
    }
}

/// A/B 2: nested⇒shadow policy (periodic reset vs dirty-bit scan) on a
/// workload whose churn moves around, provoking oscillation under the
/// simple policy.
#[must_use]
pub fn ablate_policy(accesses: u64, threads: usize) -> ExperimentRun<AblateRow> {
    let mut spec = profile(Profile::Dedup, accesses);
    spec.name = "policy-probe(dedup)".into();
    let policies = [
        ("periodic-reset", NestedToShadowPolicy::PeriodicReset),
        ("dirty-bit-scan", NestedToShadowPolicy::DirtyBitScan),
    ];
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for (name, policy) in policies {
        let opts = AgileOptions {
            nested_to_shadow: policy,
            ..AgileOptions::default()
        };
        plan.push(
            RunRequest::new(SystemConfig::new(Technique::Agile(opts)), spec.clone())
                .with_warmup(accesses / 4)
                .with_label(name),
        );
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<AblateRow> = policies
        .iter()
        .zip(&artifacts)
        .map(|((name, _), a)| {
            let o = a.stats.overheads();
            AblateRow {
                variant: (*name).to_string(),
                vmm_overhead: o.vmm,
                total_overhead: o.total(),
                extras: vec![
                    ("to-nested".into(), a.stats.vmm.to_nested as f64),
                    ("to-shadow".into(), a.stats.vmm.to_shadow as f64),
                    (
                        "hidden faults".into(),
                        a.stats.traps.count(VmtrapKind::HiddenPageFault) as f64,
                    ),
                ],
            }
        })
        .collect();
    ExperimentRun {
        name: "ablate_policy",
        text: render(
            &rows,
            "policy",
            &format!("Ablation: nested=>shadow policy (Section III-C), {accesses} accesses"),
        ),
        rows,
        artifacts,
    }
}

/// A/B 3: page walk caches on/off per technique (Section III-A).
#[must_use]
pub fn ablate_pwc(accesses: u64, threads: usize) -> ExperimentRun<AblateRow> {
    let spec = profile(Profile::Graph500, accesses);
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    let mut labels = Vec::new();
    for technique in [
        Technique::Native,
        Technique::Nested,
        Technique::Shadow,
        Technique::Agile(AgileOptions::default()),
    ] {
        for pwc_on in [true, false] {
            let mut cfg = SystemConfig::new(technique);
            if !pwc_on {
                cfg = cfg.without_pwc();
            }
            let label = format!(
                "{}/{}",
                technique.label(),
                if pwc_on { "on" } else { "off" }
            );
            plan.push(
                RunRequest::new(cfg, spec.clone())
                    .with_warmup(accesses / 4)
                    .with_label(label.clone()),
            );
            labels.push(label);
        }
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<AblateRow> = labels
        .iter()
        .zip(&artifacts)
        .map(|(label, a)| {
            let o = a.stats.overheads();
            AblateRow {
                variant: label.clone(),
                vmm_overhead: o.vmm,
                total_overhead: o.total(),
                extras: vec![
                    ("avg refs/miss".into(), a.stats.avg_refs_per_miss()),
                    ("page-walk overhead".into(), o.page_walk),
                ],
            }
        })
        .collect();
    // This ablation's signal is the walk side, so render its own table
    // rather than the generic trap-centric one.
    let mut table = Table::new(vec![
        "technique".into(),
        "PWC".into(),
        "avg refs/miss".into(),
        "page-walk overhead".into(),
    ]);
    for r in &rows {
        let (tech, pwc) = r
            .variant
            .split_once('/')
            .unwrap_or((r.variant.as_str(), "?"));
        table.row(vec![
            tech.into(),
            pwc.into(),
            format!("{:.2}", r.extras[0].1),
            pct(r.extras[1].1),
        ]);
    }
    ExperimentRun {
        name: "ablate_pwc",
        text: format!(
            "Ablation: page walk caches (Section III-A), graph500 profile, {accesses} accesses\n\n{}",
            table.render()
        ),
        rows,
        artifacts,
    }
}

/// A/B 4 (extension beyond the paper): sensitivity of agile paging to the
/// policy interval length. The paper fixes it at ~1 s; this sweep shows the
/// mechanism is robust across a wide range — too-short intervals oscillate
/// (more conversions), too-long intervals adapt slowly (more traps before
/// nesting kicks in).
#[must_use]
pub fn ablate_interval(accesses: u64, threads: usize) -> ExperimentRun<AblateRow> {
    let divisors = [50u64, 20, 10, 5, 2];
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for divisor in divisors {
        let mut spec = profile(Profile::Dedup, accesses);
        spec.accesses_per_tick = (accesses / divisor).max(1);
        plan.push(
            RunRequest::new(
                SystemConfig::new(Technique::Agile(AgileOptions::default())),
                spec,
            )
            .with_warmup(accesses / 4)
            .with_label(divisor.to_string()),
        );
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<AblateRow> = divisors
        .iter()
        .zip(&artifacts)
        .map(|(divisor, a)| {
            let o = a.stats.overheads();
            AblateRow {
                variant: divisor.to_string(),
                vmm_overhead: o.vmm,
                total_overhead: o.total(),
                extras: vec![
                    ("to-nested".into(), a.stats.vmm.to_nested as f64),
                    ("to-shadow".into(), a.stats.vmm.to_shadow as f64),
                    (
                        "gpt-write traps".into(),
                        a.stats.traps.count(VmtrapKind::GptWrite) as f64,
                    ),
                ],
            }
        })
        .collect();
    ExperimentRun {
        name: "ablate_interval",
        text: render(
            &rows,
            "ticks/run",
            &format!(
                "Ablation (extension): policy interval length, dedup profile, {accesses} accesses"
            ),
        ),
        rows,
        artifacts,
    }
}

/// Shared renderer: variant column, the ablation's extra counters, then
/// the trap/total overheads.
fn render(rows: &[AblateRow], variant_header: &str, title: &str) -> String {
    let mut headers = vec![variant_header.to_string()];
    if let Some(first) = rows.first() {
        headers.extend(first.extras.iter().map(|(k, _)| k.clone()));
    }
    headers.push("vmtrap overhead".into());
    headers.push("total overhead".into());
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.variant.clone()];
        cells.extend(r.extras.iter().map(|(_, v)| format!("{v:.0}")));
        cells.push(pct(r.vmm_overhead));
        cells.push(pct(r.total_overhead));
        table.row(cells);
    }
    format!("{title}\n\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_ablation_renders_four_variants() {
        let run = ablate_hw(3_000, 2);
        assert!(run.text.contains("no HW opts"));
        assert!(run.text.contains("both (default)"));
        assert_eq!(run.rows.len(), 4);
    }

    #[test]
    fn policy_ablation_renders_both_policies() {
        let run = ablate_policy(3_000, 2);
        assert!(run.text.contains("periodic-reset"));
        assert!(run.text.contains("dirty-bit-scan"));
    }

    #[test]
    fn pwc_ablation_shows_reduction() {
        let run = ablate_pwc(3_000, 2);
        assert!(run.text.contains("PWC"));
        assert!(run.text.contains("off"));
        assert_eq!(run.rows.len(), 8);
    }

    #[test]
    fn interval_ablation_sweeps_five_lengths() {
        let run = ablate_interval(4_000, 2);
        assert!(run.text.matches('\n').count() >= 9, "{}", run.text);
        assert!(run.text.contains("ticks/run"));
        assert_eq!(run.rows.len(), 5);
    }
}
