//! Table I: the qualitative trade-off matrix, backed by measurements.
//!
//! Each claim in the paper's Table I is re-derived from a probe run: the
//! maximum memory references on a TLB miss come from measured walks, and
//! the "page table updates fast/slow" row comes from counting VMtraps on an
//! update-heavy probe.

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::report::Table;
use agile_vmm::{AgileOptions, Technique, VmtrapKind};
use agile_workloads::{ChurnSpec, Pattern, WorkloadSpec};

fn probe_spec(accesses: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "table1-probe".into(),
        footprint: 16 << 20,
        pattern: Pattern::Uniform,
        write_fraction: 0.5,
        accesses,
        accesses_per_tick: (accesses / 10).max(1),
        churn: ChurnSpec {
            remap_every: Some(500),
            remap_pages: 16,
            churn_zone: 0.10,
            ..ChurnSpec::none()
        },
        prefault: true,
        prefault_writes: true,
        seed: 99,
    }
}

/// Regenerates Table I. Returns the rendered table.
#[must_use]
pub fn table1(accesses: u64) -> String {
    let techniques = [
        ("Base Native", Technique::Native),
        ("Nested Paging", Technique::Nested),
        ("Shadow Paging", Technique::Shadow),
        ("Agile Paging", Technique::Agile(AgileOptions::default())),
    ];
    let mut max_refs = Vec::new();
    let mut avg_refs = Vec::new();
    let mut updates = Vec::new();
    for (_, t) in techniques {
        let cfg = SystemConfig::new(t).without_pwc();
        let stats = Machine::new(cfg).run_spec_measured(&probe_spec(accesses), accesses / 4);
        // Max refs per miss: derive from the most expensive observed kind.
        let max = crate::stats::KindCounts::TABLE6_ORDER
            .iter()
            .chain([&agile_walk::WalkKind::Native])
            .filter(|k| stats.kinds.count(**k) > 0)
            .map(|k| k.expected_refs_4k())
            .max()
            .unwrap_or(0);
        max_refs.push(max);
        avg_refs.push(stats.avg_refs_per_miss());
        // VMM cycles attributable to page-table maintenance, per update.
        let maintenance = stats.traps.cycles(VmtrapKind::GptWrite)
            + stats.traps.cycles(VmtrapKind::HiddenPageFault)
            + stats.traps.cycles(VmtrapKind::TlbFlush)
            + stats.traps.cycles(VmtrapKind::AdBitSync);
        let per_update = maintenance as f64 / stats.vmm.gpt_writes_total.max(1) as f64;
        let update_label = if per_update < 100.0 {
            format!("fast: direct ({per_update:.0} cyc/update)")
        } else {
            format!("slow: VMM-mediated ({per_update:.0} cyc/update)")
        };
        updates.push(update_label);
    }

    let mut table = Table::new(vec![
        "".into(),
        "Base Native".into(),
        "Nested Paging".into(),
        "Shadow Paging".into(),
        "Agile Paging".into(),
    ]);
    table.row(vec![
        "TLB hit".into(),
        "fast (VA=>PA)".into(),
        "fast (gVA=>hPA)".into(),
        "fast (gVA=>hPA)".into(),
        "fast (gVA=>hPA)".into(),
    ]);
    table.row(
        std::iter::once("max refs on TLB miss".to_string())
            .chain(max_refs.iter().map(u32::to_string))
            .collect(),
    );
    table.row(
        std::iter::once("avg refs on TLB miss".to_string())
            .chain(avg_refs.iter().map(|a| format!("{a:.2}")))
            .collect(),
    );
    table.row(
        std::iter::once("page table updates".to_string())
            .chain(updates)
            .collect(),
    );
    table.row(vec![
        "hardware support".into(),
        "1D page walk".into(),
        "2D+1D page walk".into(),
        "1D page walk".into(),
        "2D+1D walk + switching".into(),
    ]);
    format!(
        "Table I: technique trade-offs (measured on an update-heavy uniform probe,\n\
         walk caches disabled, {accesses} accesses)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_paper_claims() {
        let text = table1(6_000);
        // Native/shadow max 4; nested max 24.
        assert!(text.contains("max refs on TLB miss  4"), "{text}");
        assert!(text.contains("24"), "{text}");
        assert!(text.contains("switching"), "{text}");
    }
}
