//! Table I: the qualitative trade-off matrix, backed by measurements.
//!
//! Each claim in the paper's Table I is re-derived from a probe run: the
//! maximum memory references on a TLB miss come from measured walks, and
//! the "page table updates fast/slow" row comes from counting VMtraps on an
//! update-heavy probe.

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::Table;
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use agile_vmm::{AgileOptions, Technique, VmtrapKind};
use agile_workloads::{ChurnSpec, Pattern, WorkloadSpec};

/// One technique's measured Table I column.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Technique display name ("Base Native" … "Agile Paging").
    pub technique: String,
    /// Maximum memory references on a TLB miss (from the most expensive
    /// observed walk kind).
    pub max_refs: u32,
    /// Average memory references per TLB miss.
    pub avg_refs: f64,
    /// VMM cycles of page-table maintenance per guest page-table update.
    pub cycles_per_update: f64,
}

impl Table1Row {
    /// The paper's qualitative "fast/slow" verdict for updates.
    #[must_use]
    pub fn update_label(&self) -> String {
        if self.cycles_per_update < 100.0 {
            format!("fast: direct ({:.0} cyc/update)", self.cycles_per_update)
        } else {
            format!(
                "slow: VMM-mediated ({:.0} cyc/update)",
                self.cycles_per_update
            )
        }
    }
}

impl JsonRow for Table1Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("technique", Json::Str(self.technique.clone())),
            ("max_refs", Json::UInt(u64::from(self.max_refs))),
            ("avg_refs", Json::Num(self.avg_refs)),
            ("cycles_per_update", Json::Num(self.cycles_per_update)),
        ])
    }
}

fn probe_spec(accesses: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "table1-probe".into(),
        footprint: 16 << 20,
        pattern: Pattern::Uniform,
        write_fraction: 0.5,
        accesses,
        accesses_per_tick: (accesses / 10).max(1),
        churn: ChurnSpec {
            remap_every: Some(500),
            remap_pages: 16,
            churn_zone: 0.10,
            ..ChurnSpec::none()
        },
        prefault: true,
        prefault_writes: true,
        seed: 99,
    }
}

/// Regenerates Table I on an update-heavy probe across `threads` workers.
#[must_use]
pub fn table1(accesses: u64, threads: usize) -> ExperimentRun<Table1Row> {
    let techniques = [
        ("Base Native", Technique::Native),
        ("Nested Paging", Technique::Nested),
        ("Shadow Paging", Technique::Shadow),
        ("Agile Paging", Technique::Agile(AgileOptions::default())),
    ];
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for (_, t) in techniques {
        let cfg = SystemConfig::new(t).without_pwc();
        plan.push(RunRequest::new(cfg, probe_spec(accesses)).with_warmup(accesses / 4));
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<Table1Row> = techniques
        .iter()
        .zip(&artifacts)
        .map(|((name, _), a)| {
            let stats = &a.stats;
            // Max refs per miss: derive from the most expensive observed
            // kind.
            let max_refs = crate::stats::KindCounts::TABLE6_ORDER
                .iter()
                .chain([&agile_walk::WalkKind::Native])
                .filter(|k| stats.kinds.count(**k) > 0)
                .map(|k| k.expected_refs_4k())
                .max()
                .unwrap_or(0);
            // VMM cycles attributable to page-table maintenance, per
            // update.
            let maintenance = stats.traps.cycles(VmtrapKind::GptWrite)
                + stats.traps.cycles(VmtrapKind::HiddenPageFault)
                + stats.traps.cycles(VmtrapKind::TlbFlush)
                + stats.traps.cycles(VmtrapKind::AdBitSync);
            Table1Row {
                technique: (*name).to_string(),
                max_refs,
                avg_refs: stats.avg_refs_per_miss(),
                cycles_per_update: maintenance as f64 / stats.vmm.gpt_writes_total.max(1) as f64,
            }
        })
        .collect();
    ExperimentRun {
        name: "table1",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

fn render(rows: &[Table1Row], accesses: u64) -> String {
    let mut table = Table::new(
        std::iter::once(String::new())
            .chain(rows.iter().map(|r| r.technique.clone()))
            .collect(),
    );
    table.row(vec![
        "TLB hit".into(),
        "fast (VA=>PA)".into(),
        "fast (gVA=>hPA)".into(),
        "fast (gVA=>hPA)".into(),
        "fast (gVA=>hPA)".into(),
    ]);
    table.row(
        std::iter::once("max refs on TLB miss".to_string())
            .chain(rows.iter().map(|r| r.max_refs.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("avg refs on TLB miss".to_string())
            .chain(rows.iter().map(|r| format!("{:.2}", r.avg_refs)))
            .collect(),
    );
    table.row(
        std::iter::once("page table updates".to_string())
            .chain(rows.iter().map(Table1Row::update_label))
            .collect(),
    );
    table.row(vec![
        "hardware support".into(),
        "1D page walk".into(),
        "2D+1D page walk".into(),
        "1D page walk".into(),
        "2D+1D walk + switching".into(),
    ]);
    format!(
        "Table I: technique trade-offs (measured on an update-heavy uniform probe,\n\
         walk caches disabled, {accesses} accesses)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_paper_claims() {
        let run = table1(6_000, 2);
        // Native/shadow max 4; nested max 24.
        assert!(run.text.contains("max refs on TLB miss  4"), "{}", run.text);
        assert!(run.text.contains("24"), "{}", run.text);
        assert!(run.text.contains("switching"), "{}", run.text);
        assert_eq!(run.rows.len(), 4);
        assert_eq!(run.artifacts.len(), 4);
    }
}
