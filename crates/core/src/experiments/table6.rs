//! Table VI: percentage of TLB misses served by each agile-paging mode
//! (4 KiB pages, no page walk caches).

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::Table;
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use crate::stats::KindCounts;
use agile_vmm::{AgileOptions, Technique};
use agile_workloads::{profile, Profile};

/// One workload's mode breakdown.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Workload name.
    pub workload: String,
    /// Fractions in Table VI column order (Shadow, L4, L3, L2, L1,
    /// Nested).
    pub fractions: [f64; 6],
    /// Average memory references per TLB miss.
    pub avg_refs: f64,
}

impl JsonRow for Table6Row {
    fn to_json(&self) -> Json {
        let modes = KindCounts::TABLE6_ORDER
            .iter()
            .zip(self.fractions)
            .map(|(kind, f)| (kind.table6_label().to_string(), Json::Num(f)))
            .collect();
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("fractions", Json::Obj(modes)),
            ("avg_refs", Json::Num(self.avg_refs)),
        ])
    }
}

/// Runs the Table VI measurement: agile paging, 4 KiB pages, walk caches
/// disabled, `accesses` accesses per workload, across `threads` workers.
#[must_use]
pub fn table6(
    accesses: u64,
    workloads: Option<&[Profile]>,
    threads: usize,
) -> ExperimentRun<Table6Row> {
    let list = workloads.unwrap_or(&Profile::ALL);
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for &wl in list {
        let cfg = SystemConfig::new(Technique::Agile(AgileOptions::default())).without_pwc();
        plan.push(RunRequest::new(cfg, profile(wl, accesses)).with_warmup(accesses / 3));
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<Table6Row> = artifacts
        .iter()
        .map(|a| {
            let mut fractions = [0.0; 6];
            for (i, kind) in KindCounts::TABLE6_ORDER.iter().enumerate() {
                fractions[i] = a.stats.kinds.fraction(*kind);
            }
            Table6Row {
                workload: a.workload.clone(),
                fractions,
                avg_refs: a.stats.avg_refs_per_miss(),
            }
        })
        .collect();
    ExperimentRun {
        name: "table6",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

fn render(rows: &[Table6Row], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "workload".into(),
        "Shadow(4)".into(),
        "L4(8)".into(),
        "L3(12)".into(),
        "L2(16)".into(),
        "L1(20)".into(),
        "Nested(24)".into(),
        "avg refs".into(),
    ]);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        for f in r.fractions {
            cells.push(format!("{:.1}%", f * 100.0));
        }
        cells.push(format!("{:.2}", r.avg_refs));
        table.row(cells);
    }
    format!(
        "Table VI: TLB misses served by each agile-paging mode\n\
         (4 KiB pages, page walk caches disabled, {accesses} accesses)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_misses_exist() {
        let run = table6(5_000, Some(&[Profile::Mcf]), 1);
        let sum: f64 = run.rows[0].fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn quiet_workload_is_mostly_shadow() {
        // A churn-free workload whose footprint warms up quickly: once the
        // demand-fault storm passes and the policy reverts, essentially
        // everything is served in full shadow mode and avg refs stay near
        // 4. (The full-size Table VI run over the paper profiles needs more
        // accesses; this is the steady-state smoke check.)
        use crate::config::SystemConfig;
        use crate::machine::Machine;
        use agile_vmm::{AgileOptions, Technique};
        let spec = agile_workloads::WorkloadSpec {
            name: "quiet".into(),
            footprint: 4 << 20,
            pattern: agile_workloads::Pattern::PointerChase,
            write_fraction: 0.2,
            accesses: 20_000,
            accesses_per_tick: 2_000,
            churn: agile_workloads::ChurnSpec::none(),
            prefault: false,
            prefault_writes: true,
            seed: 5,
        };
        let cfg = SystemConfig::new(Technique::Agile(AgileOptions::default())).without_pwc();
        let stats = Machine::new(cfg).run_spec(&spec);
        let shadow = stats.kinds.fraction(agile_walk::WalkKind::FullShadow);
        assert!(shadow > 0.8, "shadow fraction {shadow}");
        assert!(
            stats.avg_refs_per_miss() < 6.0,
            "avg refs {}",
            stats.avg_refs_per_miss()
        );
    }
}
