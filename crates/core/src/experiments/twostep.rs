//! The paper's §VI two-step trace-and-model methodology, reproduced and
//! cross-validated.
//!
//! The paper could not run agile paging on real hardware; it projected it:
//! step 1 traces page-table updates under shadow paging and emulates the
//! switching policy offline; step 2 classifies nested-run TLB misses against
//! the step-1 region lists; a linear model (Table IV) combines the fractions
//! with measured shadow/nested costs. We have a simulator, so we can do what
//! the authors could not: run the projection *and* the real thing, and
//! compare.

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::{pct, Table};
use crate::runner::{Json, RunArtifact, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use agile_trace::{LinearModel, Step1Analysis, Step2Analysis};
use agile_vmm::{AgileOptions, Technique};
use agile_workloads::{profile, Profile, WorkloadSpec};

/// One workload's projection vs. direct simulation.
#[derive(Debug, Clone)]
pub struct TwoStepRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of VMM interventions eliminated (step 1's `F_V`).
    pub fv: f64,
    /// Fraction of misses served fully in shadow mode (1 − Σ `F_Ni`).
    pub shadow_fraction: f64,
    /// The model's projected total overhead for agile paging.
    pub projected_overhead: f64,
    /// Directly simulated agile overhead.
    pub simulated_overhead: f64,
}

impl JsonRow for TwoStepRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("fv", Json::Num(self.fv)),
            ("shadow_fraction", Json::Num(self.shadow_fraction)),
            ("projected_overhead", Json::Num(self.projected_overhead)),
            ("simulated_overhead", Json::Num(self.simulated_overhead)),
        ])
    }
}

/// The three runs behind one workload's row: shadow and nested with the
/// instrumented (tracing) VMM, plus the direct agile simulation as ground
/// truth.
fn requests_for(spec: &WorkloadSpec, warmup: u64) -> [RunRequest; 3] {
    [
        RunRequest::new(SystemConfig::new(Technique::Shadow), spec.clone())
            .with_warmup(warmup)
            .with_trace(),
        RunRequest::new(SystemConfig::new(Technique::Nested), spec.clone())
            .with_warmup(warmup)
            .with_trace(),
        RunRequest::new(
            SystemConfig::new(Technique::Agile(AgileOptions::default())),
            spec.clone(),
        )
        .with_warmup(warmup),
    ]
}

/// Combines a workload's (shadow, nested, agile) artifacts into the
/// projection row.
fn row_from(shadow: &RunArtifact, nested: &RunArtifact, agile: &RunArtifact) -> TwoStepRow {
    // Step 1: switching policy emulated offline from the shadow trace.
    let step1 = Step1Analysis::from_trace(shadow.trace.as_ref().expect("shadow run traced"));
    // Step 2: BadgerTrap-style classification of the nested run's misses.
    let step2 =
        Step2Analysis::from_trace(nested.trace.as_ref().expect("nested run traced"), &step1);
    // Table IV linear model from the measured shadow/nested runs.
    let per_miss = |stats: &crate::stats::RunStats| {
        if stats.tlb.misses == 0 {
            0.0
        } else {
            stats.walk_cycles as f64 / stats.tlb.misses as f64
        }
    };
    let model = LinearModel {
        ideal_cycles: shadow.stats.ideal_cycles,
        shadow_vmm_cycles: shadow.stats.traps.total_cycles(),
        tlb_misses: shadow.stats.tlb.misses,
        shadow_cycles_per_miss: per_miss(&shadow.stats),
        nested_cycles_per_miss: per_miss(&nested.stats),
    };
    let projection = model.project(step1.fv(), step2.fn_fractions());
    TwoStepRow {
        workload: shadow.workload.clone(),
        fv: step1.fv(),
        shadow_fraction: step2.shadow_fraction(),
        projected_overhead: projection.total_overhead(),
        simulated_overhead: agile.stats.overheads().total(),
    }
}

/// Runs the two-step methodology for `workloads` (default: dedup, memcached,
/// gcc, mcf — the paper's spread of update intensity) at `accesses`, with
/// all 3×W constituent runs fanned across `threads` workers.
#[must_use]
pub fn twostep(
    accesses: u64,
    workloads: Option<&[Profile]>,
    threads: usize,
) -> ExperimentRun<TwoStepRow> {
    let default = [
        Profile::Mcf,
        Profile::Gcc,
        Profile::Memcached,
        Profile::Dedup,
    ];
    let list = workloads.unwrap_or(&default);
    let warmup = accesses / 3;
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for &wl in list {
        for req in requests_for(&profile(wl, accesses), warmup) {
            plan.push(req);
        }
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<TwoStepRow> = artifacts
        .chunks_exact(3)
        .map(|triple| row_from(&triple[0], &triple[1], &triple[2]))
        .collect();
    ExperimentRun {
        name: "twostep",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

/// Runs the two-step methodology for one workload spec with an explicit
/// warm-up boundary (serial).
#[must_use]
pub fn twostep_spec(spec: &WorkloadSpec, warmup: u64) -> TwoStepRow {
    let [shadow, nested, agile] = requests_for(spec, warmup).map(|req| req.run());
    row_from(&shadow, &nested, &agile)
}

fn render(rows: &[TwoStepRow], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "workload".into(),
        "F_V (traps cut)".into(),
        "shadow-mode misses".into(),
        "projected agile".into(),
        "simulated agile".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.workload.clone(),
            pct(r.fv),
            pct(r.shadow_fraction),
            pct(r.projected_overhead),
            pct(r.simulated_overhead),
        ]);
    }
    format!(
        "Two-step methodology (paper SVI): trace-and-model projection vs direct\n\
         simulation ({accesses} accesses; step 1 = shadow trace, step 2 =\n\
         BadgerTrap-style classification, Table IV linear model)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(churny: bool) -> WorkloadSpec {
        WorkloadSpec {
            name: "twostep-mini".into(),
            footprint: 8 << 20,
            pattern: agile_workloads::Pattern::Uniform,
            write_fraction: 0.3,
            accesses: 40_000,
            accesses_per_tick: 4_000,
            churn: if churny {
                agile_workloads::ChurnSpec {
                    remap_every: Some(500),
                    remap_pages: 16,
                    churn_zone: 0.2,
                    ..agile_workloads::ChurnSpec::none()
                }
            } else {
                agile_workloads::ChurnSpec::none()
            },
            prefault: true,
            prefault_writes: true,
            seed: 77,
        }
    }

    #[test]
    fn projection_tracks_direct_simulation_on_quiet_workload() {
        let row = twostep_spec(&mini(false), 13_000);
        // Churn-free: the model should project ~shadow behaviour and land
        // close to the direct simulation.
        assert!(
            row.shadow_fraction > 0.8,
            "shadow fraction {}",
            row.shadow_fraction
        );
        let gap = (row.projected_overhead - row.simulated_overhead).abs();
        assert!(
            gap < 0.25,
            "projection {:.3} vs simulation {:.3}",
            row.projected_overhead,
            row.simulated_overhead
        );
    }

    #[test]
    fn update_heavy_workload_shows_trap_elimination() {
        let row = twostep_spec(&mini(true), 13_000);
        assert!(row.fv > 0.3, "F_V = {}", row.fv);
        assert!(row.shadow_fraction < 1.0);
    }
}
