//! Table II: memory references with each degree of nesting.
//!
//! Builds one guest page mapped through real guest/host/shadow tables and
//! measures the exact number of PTE loads each walk configuration performs
//! (walk caches off, 4 KiB pages), reproducing the paper's 4 / 8 / 12 / 16
//! / 20 / 24 ladder.

use super::{ExperimentRun, JsonRow};
use crate::report::Table;
use crate::runner::{parallel_map, Json};
use agile_mem::{GuestMemMap, HostSpace, PhysMem, RadixTable, TableSpace};
use agile_tlb::{NestedTlb, PageWalkCaches, PwcConfig};
use agile_types::{
    AccessKind, Asid, GuestFrame, GuestVirtAddr, HostFrame, Level, PageSize, Pte, PteFlags, VmId,
};
use agile_walk::{AgileCr3, WalkHw, WalkStats};

/// One measured walk configuration.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Paper's label for the degree of nesting.
    pub label: String,
    /// Measured total memory references.
    pub refs: u32,
    /// Measured shadow-table references.
    pub shadow_refs: u64,
    /// Measured guest-table references.
    pub guest_refs: u64,
    /// Measured host-table references.
    pub host_refs: u64,
}

impl JsonRow for Table2Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("refs", Json::UInt(u64::from(self.refs))),
            ("shadow_refs", Json::UInt(self.shadow_refs)),
            ("guest_refs", Json::UInt(self.guest_refs)),
            ("host_refs", Json::UInt(self.host_refs)),
        ])
    }
}

struct Fixture {
    mem: PhysMem,
    gmap: GuestMemMap,
    gpt: RadixTable,
    hpt: RadixTable,
    spt: RadixTable,
    gva: GuestVirtAddr,
}

impl Fixture {
    fn new() -> Self {
        let mut mem = PhysMem::new();
        let mut gmap = GuestMemMap::new();
        let mut host = HostSpace;
        let gpt = RadixTable::new(&mut mem, &mut gmap);
        let hpt = RadixTable::new(&mut mem, &mut host);
        let spt = RadixTable::new(&mut mem, &mut host);
        let gva = GuestVirtAddr::new(0x7f55_4433_2000);
        let data = gmap.alloc_data(&mut mem);
        gpt.map(
            &mut mem,
            &mut gmap,
            gva.raw(),
            data.raw(),
            PageSize::Size4K,
            PteFlags::WRITABLE,
        )
        .expect("guest map");
        let pairs: Vec<_> = gmap.frames().collect();
        for (g, h) in pairs {
            hpt.map(
                &mut mem,
                &mut host,
                g.base().raw(),
                h.raw(),
                PageSize::Size4K,
                PteFlags::WRITABLE,
            )
            .expect("host map");
        }
        let backing = gmap.backing(data).expect("backed");
        spt.map(
            &mut mem,
            &mut host,
            gva.raw(),
            backing.raw(),
            PageSize::Size4K,
            PteFlags::WRITABLE,
        )
        .expect("shadow map");
        Fixture {
            mem,
            gmap,
            gpt,
            hpt,
            spt,
            gva,
        }
    }

    fn guest_table_hframe(&self, level: Level) -> HostFrame {
        let g = self
            .gpt
            .table_frame(&self.mem, &self.gmap, self.gva.raw(), level)
            .expect("guest path");
        self.gmap.resolve(g)
    }

    fn set_switch(&mut self, level: Level) {
        self.spt
            .zap_subtree(&mut self.mem, &mut HostSpace, self.gva.raw(), level);
        let target = self.guest_table_hframe(level.child().expect("interior"));
        self.spt
            .set_entry(
                &mut self.mem,
                &HostSpace,
                self.gva.raw(),
                level,
                Pte::new(target.raw(), PteFlags::PRESENT | PteFlags::SWITCHING),
            )
            .expect("switch entry");
    }

    fn measure(&mut self, cr3: Cr3Kind) -> Table2Row {
        let gpt_root_h = self.guest_table_hframe(Level::L4);
        let cfg = PwcConfig::disabled();
        let mut pwc = PageWalkCaches::new(&cfg);
        let mut ntlb = NestedTlb::new(&cfg);
        let mut stats = WalkStats::default();
        let mut hw = WalkHw {
            mem: &mut self.mem,
            pwc: &mut pwc,
            ntlb: &mut ntlb,
            vm: VmId::new(0),
            stats: &mut stats,
        };
        let asid = Asid::new(1);
        let gptr = GuestFrame::new(self.gpt.root_raw());
        let hptr = HostFrame::new(self.hpt.root_raw());
        let sptr = HostFrame::new(self.spt.root_raw());
        let (label, ok) = match cr3 {
            Cr3Kind::Native => (
                "Base Native".to_string(),
                hw.shadow_walk(asid, self.gva, sptr, AccessKind::Read)
                    .map(|mut o| {
                        o.kind = agile_walk::WalkKind::Native;
                        o
                    }),
            ),
            Cr3Kind::Shadow => (
                "Shadow (agile: full shadow)".to_string(),
                hw.agile_walk(
                    asid,
                    self.gva,
                    AgileCr3::Shadow { spt_root: sptr },
                    gptr,
                    hptr,
                    AccessKind::Read,
                ),
            ),
            Cr3Kind::SwitchAt(level) => (
                format!("Agile: switch below {level}"),
                hw.agile_walk(
                    asid,
                    self.gva,
                    AgileCr3::Shadow { spt_root: sptr },
                    gptr,
                    hptr,
                    AccessKind::Read,
                ),
            ),
            Cr3Kind::NestedFromRoot => (
                "Agile: nested from root".to_string(),
                hw.agile_walk(
                    asid,
                    self.gva,
                    AgileCr3::NestedFromRoot {
                        gpt_root: gpt_root_h,
                    },
                    gptr,
                    hptr,
                    AccessKind::Read,
                ),
            ),
            Cr3Kind::Nested => (
                "Nested Paging".to_string(),
                hw.nested_walk(asid, self.gva, gptr, hptr, AccessKind::Read),
            ),
        };
        let ok = ok.expect("walk succeeds");
        Table2Row {
            label,
            refs: ok.refs,
            shadow_refs: stats.refs_shadow,
            guest_refs: stats.refs_guest,
            host_refs: stats.refs_host,
        }
    }
}

#[derive(Clone, Copy)]
enum Cr3Kind {
    Native,
    Shadow,
    SwitchAt(Level),
    NestedFromRoot,
    Nested,
}

/// Runs the Table II measurement across `threads` workers; each walk
/// configuration builds its own fixture (real guest/host/shadow tables)
/// so the measurements are independent.
#[must_use]
pub fn table2(threads: usize) -> ExperimentRun<Table2Row> {
    let configs = vec![
        Cr3Kind::Native,
        Cr3Kind::Shadow,
        Cr3Kind::SwitchAt(Level::L2),
        Cr3Kind::SwitchAt(Level::L3),
        Cr3Kind::SwitchAt(Level::L4),
        Cr3Kind::NestedFromRoot,
        Cr3Kind::Nested,
    ];
    let rows = parallel_map(threads, configs, |_, kind| {
        let mut fx = Fixture::new();
        if let Cr3Kind::SwitchAt(level) = kind {
            fx.set_switch(level);
        }
        fx.measure(kind)
    });

    let mut table = Table::new(vec![
        "configuration".into(),
        "total refs".into(),
        "shadow refs".into(),
        "guest refs".into(),
        "host refs".into(),
        "paper".into(),
    ]);
    let paper = ["4", "4", "8", "12", "16", "20", "24"];
    for (row, want) in rows.iter().zip(paper) {
        table.row(vec![
            row.label.clone(),
            row.refs.to_string(),
            row.shadow_refs.to_string(),
            row.guest_refs.to_string(),
            row.host_refs.to_string(),
            want.into(),
        ]);
    }
    let header = "Table II: memory references per TLB miss by degree of nesting\n\
                  (4 KiB pages, page walk caches disabled)\n\n";
    ExperimentRun {
        name: "table2",
        text: format!("{header}{}", table.render()),
        rows,
        artifacts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper() {
        let run = table2(2);
        let refs: Vec<u32> = run.rows.iter().map(|r| r.refs).collect();
        assert_eq!(refs, vec![4, 4, 8, 12, 16, 20, 24]);
    }

    #[test]
    fn breakdowns_are_consistent() {
        let run = table2(1);
        for row in &run.rows {
            assert_eq!(
                u64::from(row.refs),
                row.shadow_refs + row.guest_refs + row.host_refs,
                "{}",
                row.label
            );
        }
        // Full nested: 4 guest + 20 host.
        let nested = run.rows.last().unwrap();
        assert_eq!(nested.guest_refs, 4);
        assert_eq!(nested.host_refs, 20);
    }

    #[test]
    fn render_contains_all_rows() {
        let run = table2(1);
        for row in &run.rows {
            assert!(run.text.contains(&row.label), "{}", row.label);
        }
    }
}
