//! Section VI "Cost of VMtraps": the LMbench-style microbenchmark table.
//!
//! Each microbenchmark isolates one trap source under shadow paging; the
//! reported per-trap cost is VMM cycles divided by trap count, which (by
//! construction of the cost model) recovers the configured per-trap
//! latencies — the analogue of the paper measuring its platform's VMexit
//! costs before plugging them into the linear model.

use super::{ExperimentRun, JsonRow};
use crate::config::SystemConfig;
use crate::report::Table;
use crate::runner::{Json, RunOutcome, RunPlan, RunRequest};
use crate::service::PlanOptions;
use agile_vmm::{Technique, VmtrapKind};
use agile_workloads::micro_benches;

/// One microbenchmark result.
#[derive(Debug, Clone)]
pub struct VmtrapRow {
    /// Microbenchmark name.
    pub micro: String,
    /// Dominant trap kind observed.
    pub dominant: VmtrapKind,
    /// Traps of the dominant kind.
    pub count: u64,
    /// Measured cycles per dominant trap.
    pub cycles_each: f64,
    /// Total VMM cycles across all trap kinds.
    pub total_vmm_cycles: u64,
}

impl JsonRow for VmtrapRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("micro", Json::Str(self.micro.clone())),
            ("dominant", Json::Str(self.dominant.label().into())),
            ("count", Json::UInt(self.count)),
            ("cycles_each", Json::Num(self.cycles_each)),
            ("total_vmm_cycles", Json::UInt(self.total_vmm_cycles)),
        ])
    }
}

/// Runs the microbenchmark suite under shadow paging across `threads`
/// workers.
#[must_use]
pub fn vmtrap_costs(accesses: u64, threads: usize) -> ExperimentRun<VmtrapRow> {
    let micros = micro_benches(accesses);
    let mut plan = RunPlan::new().with_options(PlanOptions::with_threads(threads));
    for micro in &micros {
        plan.push(
            RunRequest::new(SystemConfig::new(Technique::Shadow), micro.spec.clone())
                .with_label(micro.name),
        );
    }
    let artifacts: Vec<_> = plan
        .run()
        .into_iter()
        .map(RunOutcome::into_artifact)
        .collect();
    let rows: Vec<VmtrapRow> = micros
        .iter()
        .zip(&artifacts)
        .map(|(micro, a)| {
            let stats = &a.stats;
            let dominant = VmtrapKind::ALL
                .into_iter()
                .max_by_key(|k| stats.traps.cycles(*k))
                .expect("kinds non-empty");
            let count = stats.traps.count(dominant);
            let cycles_each = if count == 0 {
                0.0
            } else {
                stats.traps.cycles(dominant) as f64 / count as f64
            };
            VmtrapRow {
                micro: micro.name.to_string(),
                dominant,
                count,
                cycles_each,
                total_vmm_cycles: stats.traps.total_cycles(),
            }
        })
        .collect();
    ExperimentRun {
        name: "vmtraps",
        text: render(&rows, accesses),
        rows,
        artifacts,
    }
}

fn render(rows: &[VmtrapRow], accesses: u64) -> String {
    let mut table = Table::new(vec![
        "microbenchmark".into(),
        "dominant trap".into(),
        "traps".into(),
        "cycles/trap".into(),
        "total VMM cycles".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.micro.clone(),
            r.dominant.label().to_string(),
            r.count.to_string(),
            format!("{:.0}", r.cycles_each),
            r.total_vmm_cycles.to_string(),
        ]);
    }
    format!(
        "Cost of VMtraps (Section VI): shadow paging, {accesses} accesses per micro\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_micro_produces_traps_in_the_thousands_of_cycles() {
        let run = vmtrap_costs(3_000, 2);
        assert_eq!(run.rows.len(), 4);
        for r in &run.rows {
            assert!(r.count > 0, "{} produced no traps", r.micro);
            assert!(
                r.cycles_each >= 1000.0,
                "{}: {} cycles/trap",
                r.micro,
                r.cycles_each
            );
        }
    }

    #[test]
    fn context_switch_micro_is_dominated_by_switch_traps() {
        let run = vmtrap_costs(3_000, 1);
        let ctx = run
            .rows
            .iter()
            .find(|r| r.micro == "context-switch")
            .unwrap();
        assert_eq!(ctx.dominant, VmtrapKind::ContextSwitch);
    }
}
