//! Minimal text-table rendering for experiment output.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use agile_core::Table;
///
/// let mut t = Table::new(vec!["workload".into(), "overhead".into()]);
/// t.row(vec!["mcf".into(), "49.8%".into()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// assert!(s.contains("overhead"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      bbbb"));
        assert!(lines[2].starts_with("xxxxx  1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
