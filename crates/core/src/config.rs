//! Whole-system configuration.

use agile_tlb::{PwcConfig, TlbConfig};
use agile_vmm::{Technique, VmmConfig};

/// Configuration of one simulated system run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Memory-virtualization technique.
    pub technique: Technique,
    /// TLB hierarchy geometry (defaults to Table III).
    pub tlb: TlbConfig,
    /// Page-walk-cache / nested-TLB geometry (disable for Table VI runs).
    pub pwc: PwcConfig,
    /// Transparent huge pages in the guest OS (the paper's "2M"
    /// configurations; both translation stages then use 2 MiB pages).
    pub thp: bool,
    /// Cycles charged per guest/shadow page-walk memory reference that
    /// misses the walk caches (a DRAM/L2-blend; every experiment prints
    /// it).
    pub walk_ref_cycles: u64,
    /// Cycles charged per *host* (EPT) page-table reference. Host-table
    /// entries exhibit extreme temporal locality across walks and sit in
    /// the data caches (Bhargava et al.), so they are much cheaper than
    /// guest/shadow references; this is what makes a 24-reference nested
    /// walk ~2× a native walk rather than 6× on real hardware.
    pub host_ref_cycles: u64,
    /// Cycles of non-translation work represented by one `Access` event
    /// (the performance model's `E_ideal` per access).
    pub base_cycles_per_access: u64,
    /// VMtrap cost model override (defaults per technique).
    pub vmm: VmmConfig,
    /// Run the [`crate::verify`] paranoia layer: cross-check every TLB hit
    /// and completed walk against a reference translator, audit stats
    /// conservation identities, and sweep the TLBs/PWCs/nested TLB for
    /// stale translations after invalidation events. Strictly read-only —
    /// results and fingerprints are unchanged; only wall-clock time grows.
    /// Off by default; defaults to on when the `AGILE_PARANOIA`
    /// environment variable is set (tests and CI use this).
    pub paranoia: bool,
}

impl SystemConfig {
    /// Defaults for `technique`: Table III TLBs, walk caches on, 4 KiB
    /// pages. Paranoia checks default to off unless the `AGILE_PARANOIA`
    /// environment variable is set.
    #[must_use]
    pub fn new(technique: Technique) -> Self {
        SystemConfig {
            technique,
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            thp: false,
            walk_ref_cycles: 40,
            host_ref_cycles: 10,
            base_cycles_per_access: 125,
            vmm: VmmConfig::new(technique),
            paranoia: std::env::var_os("AGILE_PARANOIA").is_some(),
        }
    }

    /// Same configuration with transparent huge pages on (the "2M" bars).
    #[must_use]
    pub fn with_thp(mut self) -> Self {
        self.thp = true;
        self
    }

    /// Same configuration with all walk caches disabled (Table VI's
    /// "assuming no page walk caches").
    #[must_use]
    pub fn without_pwc(mut self) -> Self {
        self.pwc = PwcConfig::disabled();
        self
    }

    /// Same configuration under a different technique. The VMtrap cost
    /// model is reset to that technique's defaults (override it afterwards
    /// with [`SystemConfig::with_vmm`] if needed).
    #[must_use]
    pub fn with_technique(mut self, technique: Technique) -> Self {
        self.technique = technique;
        self.vmm = VmmConfig::new(technique);
        self
    }

    /// Same configuration with a custom TLB hierarchy geometry.
    #[must_use]
    pub fn with_tlb(mut self, tlb: TlbConfig) -> Self {
        self.tlb = tlb;
        self
    }

    /// Same configuration with a custom page-walk-cache geometry.
    #[must_use]
    pub fn with_pwc(mut self, pwc: PwcConfig) -> Self {
        self.pwc = pwc;
        self
    }

    /// Same configuration with a custom VMM cost model.
    #[must_use]
    pub fn with_vmm(mut self, vmm: VmmConfig) -> Self {
        self.vmm = vmm;
        self
    }

    /// Same configuration with a different guest/shadow walk-reference
    /// cost.
    #[must_use]
    pub fn with_walk_ref_cycles(mut self, cycles: u64) -> Self {
        self.walk_ref_cycles = cycles;
        self
    }

    /// Same configuration with a different host (EPT) walk-reference cost.
    #[must_use]
    pub fn with_host_ref_cycles(mut self, cycles: u64) -> Self {
        self.host_ref_cycles = cycles;
        self
    }

    /// Same configuration with a different per-access ideal-work cost.
    #[must_use]
    pub fn with_base_cycles_per_access(mut self, cycles: u64) -> Self {
        self.base_cycles_per_access = cycles;
        self
    }

    /// Same configuration with the [`crate::verify`] paranoia layer on or
    /// off.
    #[must_use]
    pub fn with_paranoia(mut self, paranoia: bool) -> Self {
        self.paranoia = paranoia;
        self
    }

    /// Label like "4K:S" / "2M:A" used in Figure 5 column headers.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}:{}",
            if self.thp { "2M" } else { "4K" },
            self.technique.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_5() {
        assert_eq!(SystemConfig::new(Technique::Native).label(), "4K:B");
        assert_eq!(
            SystemConfig::new(Technique::Shadow).with_thp().label(),
            "2M:S"
        );
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::new(Technique::Nested)
            .with_thp()
            .without_pwc();
        assert!(c.thp);
        assert!(!c.pwc.enabled);
    }

    #[test]
    fn full_builder_surface_sets_every_knob() {
        let c = SystemConfig::new(Technique::Native)
            .with_technique(Technique::Shadow)
            .with_tlb(TlbConfig::default())
            .with_pwc(PwcConfig::disabled())
            .with_vmm(VmmConfig::new(Technique::Shadow))
            .with_walk_ref_cycles(55)
            .with_host_ref_cycles(7)
            .with_base_cycles_per_access(200);
        assert_eq!(c.technique, Technique::Shadow);
        assert!(!c.pwc.enabled);
        assert_eq!(c.walk_ref_cycles, 55);
        assert_eq!(c.host_ref_cycles, 7);
        assert_eq!(c.base_cycles_per_access, 200);
        assert_eq!(c.label(), "4K:S");
    }

    #[test]
    fn paranoia_builder_toggles() {
        let c = SystemConfig::new(Technique::Nested).with_paranoia(true);
        assert!(c.paranoia);
        assert!(!c.with_paranoia(false).paranoia);
    }

    #[test]
    fn with_technique_resets_trap_costs() {
        let c = SystemConfig::new(Technique::Nested).with_technique(Technique::Shadow);
        assert_eq!(c.vmm, VmmConfig::new(Technique::Shadow));
    }
}
